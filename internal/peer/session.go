package peer

import (
	"sort"
	"sync"
	"time"

	"repro/internal/ast"
	"repro/internal/protocol"
	"repro/internal/store"
	"repro/internal/value"
)

// The stream session layer.
//
// Every ordered peer-to-peer message stream has two halves, and this file
// owns the state of both:
//
//   - sendSession — the sender half of one (this peer → dst) stream: the
//     per-stream epoch, sequence numbering, the unacknowledged entry queue,
//     the destination's cumulative ack floor, flusher/backoff state, and the
//     anti-entropy advert clock. The outbox (outbox.go) is the delivery
//     engine that drives sendSessions; it no longer holds stream state of
//     its own.
//   - inSession — the receiver half of one (src → this peer) stream: the
//     adopted epoch, the applied watermark (exactly-once application), the
//     staged acknowledgment released after durability, the per-sender
//     support ledger (which facts src currently maintains here, per
//     relation, with O(1) digests), and the resync rate limiters.
//
// Epoch adoption, watermark dedup and ack staging — previously inlined
// across peer.go and stage.go — live in inSession.accept/stageAck. The
// ledger and digests are what anti-entropy compares against a sender's
// DigestMsg advertisement and what a SnapshotMsg replaces.

// resyncRequestTTL bounds how often a receiver re-asks the same sender for
// repair: a request is best-effort (it can be lost, or the answering
// snapshot can), so the receiver re-arms after this long rather than
// waiting forever — but never spams a sender that is already answering.
const resyncRequestTTL = time.Second

// inSession is the receiver half of one (src → this peer) stream session.
// All fields are guarded by the peer's mutex (sessions are only touched
// during ingestion and recovery).
type inSession struct {
	from string

	// Stream state: the sender's adopted epoch and the applied watermark —
	// the highest sequence applied within that epoch. Replays at or below
	// the watermark are re-acked without being re-applied; a new epoch
	// starting at sequence 1 is adopted with a fresh watermark (the sender
	// restarted, or reset the stream for a resync).
	known bool
	epoch uint64
	seq   uint64

	// Staged acknowledgment: set during ingestion, released to the outbox
	// only after everything it certifies (applied facts, the durable
	// watermark) has been synced. Always equals (epoch, seq) when staged.
	ackStaged bool
	ackEpoch  uint64
	ackSeq    uint64

	// Resync rate limiters: when the matching request was last sent.
	// Cleared on progress (stream adoption, snapshot application).
	// advertWanted marks a solicited advert in flight (an Advert repair
	// request went out): the digest comparison it triggers may bypass the
	// repairAsked limiter once — the stamp rate-limits the *request*, not
	// the repair the requested advert concludes is needed.
	resetAsked   time.Time
	repairAsked  time.Time
	advertWanted bool

	// sup is the per-sender support ledger: the facts src currently
	// maintains at this peer, keyed by relation id then tuple key. It
	// mirrors what src's remote view believes this peer holds — including
	// maintained facts in extensional relations — and is exactly the set a
	// SnapshotMsg replaces. trees keeps a Merkle summary tree per relation,
	// maintained on every add/remove: its root is the O(1) digest a
	// DigestMsg advertisement is compared against, and its range reads
	// answer the bisection dialogue in O(log n).
	sup   map[string]map[string]value.Tuple
	trees map[string]*store.MerkleTree
	// intern, when set (peers with Config.Interner), canonicalizes ledger
	// tuples so a replicated fact's support entry shares its backing with
	// the stored relation tuple and every other peer's ledger.
	intern *value.Interner

	// snapParts buffers the ops of a chunked snapshot in flight: every
	// SnapshotMsg with More set parks its ops here, and the final chunk
	// applies the whole snapshot atomically. A stream adoption discards a
	// partial buffer — the new stream re-ships its snapshot from chunk one.
	snapParts []protocol.FactDelta
}

func newInSession(from string) *inSession {
	return &inSession{
		from:  from,
		sup:   map[string]map[string]value.Tuple{},
		trees: map[string]*store.MerkleTree{},
	}
}

// accept runs the stream-acceptance state machine for one sequenced
// message: epoch adoption, watermark dedup, gap detection, ack staging.
// It reports whether the payload should be applied, and whether this
// message adopted a new epoch of an already-known stream (the cue to
// request a resync — the previous incarnation may have died owing us
// retractions).
func (s *inSession) accept(msg protocol.DataMsg) (apply, adopted bool) {
	if !s.known {
		// First contact (or first after this peer lost its own state):
		// record the stream. The watermark starts at zero, so only
		// sequence 1 can apply; a mid-stream first contact surfaces as a
		// persistent gap, which the caller repairs with a reset request.
		s.known = true
		s.epoch = msg.Epoch
		s.seq = 0
		s.snapParts = nil
		s.advertWanted = false
	} else if s.epoch != msg.Epoch {
		if msg.Seq != 1 {
			// A stray from a stale (or not yet adopted) stream.
			return false, false
		}
		// The sender restarted (or reset) its stream: adopt it with a
		// fresh watermark, so its re-sends apply instead of being misread
		// as replays of the old stream. A half-buffered snapshot of the
		// old stream is dead — the new stream re-ships its own.
		s.epoch = msg.Epoch
		s.seq = 0
		s.snapParts = nil
		s.advertWanted = false
		adopted = true
	}
	if msg.Seq <= s.seq {
		s.stageAck() // replay: re-ack the watermark without re-applying
		return false, adopted
	}
	if msg.Seq != s.seq+1 {
		return false, adopted // gap: wait for the in-order retransmission
	}
	s.seq = msg.Seq
	s.stageAck()
	s.resetAsked = time.Time{}
	return true, adopted
}

// wedged reports whether a rejected message reveals a stream this session
// can never catch up with on its own: the epoch matches, nothing of it was
// ever applied here, and the sender is already mid-sequence. That is the
// signature of a receiver that lost its state while the sender kept its
// stream — in-order retransmission alone cannot recover, because the
// sender has long dropped the acknowledged prefix.
func (s *inSession) wedged(msg protocol.DataMsg) bool {
	return s.known && s.epoch == msg.Epoch && s.seq == 0 && msg.Seq > 1
}

// stageAck stages the cumulative acknowledgment of the current watermark.
func (s *inSession) stageAck() {
	s.ackStaged = true
	s.ackEpoch = s.epoch
	s.ackSeq = s.seq
}

// ledgerAdd records that the sender maintains (relID, t) here.
func (s *inSession) ledgerAdd(relID string, t value.Tuple) {
	m := s.sup[relID]
	if m == nil {
		m = map[string]value.Tuple{}
		s.sup[relID] = m
	}
	key := t.Key()
	if _, ok := m[key]; ok {
		return
	}
	if s.intern != nil {
		t, key = s.intern.Tuple(t)
	} else {
		t = t.Clone()
	}
	m[key] = t
	tr := s.trees[relID]
	if tr == nil {
		tr = store.NewMerkleTree()
		s.trees[relID] = tr
	}
	tr.Add(key)
}

// ledgerRemove records that the sender no longer maintains (relID, t) here.
func (s *inSession) ledgerRemove(relID string, t value.Tuple) {
	m := s.sup[relID]
	key := t.Key()
	if _, ok := m[key]; !ok {
		return
	}
	delete(m, key)
	if len(m) == 0 {
		delete(s.sup, relID)
	}
	if tr := s.trees[relID]; tr != nil {
		tr.Remove(key)
		if tr.Len() == 0 {
			delete(s.trees, relID)
		}
	}
}

// ledgerDigest returns the digest of one relation's ledger — a tree root
// read, zero when the sender maintains nothing in the relation.
func (s *inSession) ledgerDigest(relID string) store.Digest {
	if tr := s.trees[relID]; tr != nil {
		return tr.Root()
	}
	return store.Digest{}
}

// ledgerCount returns how many facts the sender maintains here in total —
// the size a repair would have to re-ship, which routes the repair: big
// ledgers earn a ranged dialogue, small ones a plain snapshot.
func (s *inSession) ledgerCount() int {
	n := 0
	for _, m := range s.sup {
		n += len(m)
	}
	return n
}

// rangeDigest digests one hash range of one relation's ledger — the
// receiver half of a bisection comparison.
func (s *inSession) rangeDigest(relID string, lo, hi uint64) store.Digest {
	if tr := s.trees[relID]; tr != nil {
		return tr.RangeDigest(lo, hi)
	}
	return store.Digest{}
}

// digestsMatch compares the sender's advertised per-relation digests
// against this session's ledger digests — O(#relations), no tuples walked.
func (s *inSession) digestsMatch(rels map[string]protocol.RelDigest) bool {
	return len(s.mismatchedRels(rels)) == 0
}

// mismatchedRels returns the relations whose advertised digest disagrees
// with this session's ledger — including relations only one side has —
// sorted for deterministic repair traffic.
func (s *inSession) mismatchedRels(rels map[string]protocol.RelDigest) []string {
	var out []string
	for relID, rd := range rels {
		d := s.ledgerDigest(relID)
		if d.Hash != rd.Hash || d.Count != rd.Count {
			out = append(out, relID)
		}
	}
	for relID, tr := range s.trees {
		if _, ok := rels[relID]; !ok && tr.Len() > 0 {
			out = append(out, relID)
		}
	}
	sort.Strings(out)
	return out
}

// staleAgainst returns the ledger facts a snapshot no longer covers —
// support to drop — sorted for deterministic application. covered is keyed
// by relation id then tuple key.
func (s *inSession) staleAgainst(covered map[string]map[string]bool) []ast.Fact {
	var stale []ast.Fact
	for relID, m := range s.sup {
		name, peerName := store.SplitID(relID)
		for key, t := range m {
			if !covered[relID][key] {
				stale = append(stale, ast.Fact{Rel: name, Peer: peerName, Args: t})
			}
		}
	}
	sortFactsByKey(stale)
	return stale
}

// sortFactsByKey sorts facts by canonical key with the keys precomputed —
// a reset after a sender restart can put a whole ledger through here.
func sortFactsByKey(fs []ast.Fact) {
	if len(fs) < 2 {
		return
	}
	keys := make([]string, len(fs))
	for i, f := range fs {
		keys[i] = f.Key()
	}
	sort.Sort(&factKeySorter{fs: fs, keys: keys})
}

type factKeySorter struct {
	fs   []ast.Fact
	keys []string
}

func (s *factKeySorter) Len() int           { return len(s.fs) }
func (s *factKeySorter) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *factKeySorter) Swap(i, j int) {
	s.fs[i], s.fs[j] = s.fs[j], s.fs[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

// sendSession is the sender half of one (this peer → dst) stream session:
// the per-stream epoch, the sequence numbers, the unacknowledged entries,
// and the delivery state the outbox's flushers drive. Locking: enqMu
// serializes enqueuers across the assign-seq / persist / publish sequence
// (so the durable log always records an entry before a flusher can
// transmit it, and entries publish in sequence order); mu guards the rest.
type sendSession struct {
	dst string

	enqMu sync.Mutex

	mu sync.Mutex
	// epoch identifies this stream (protocol.DataMsg): it starts as the
	// outbox default (random per incarnation for volatile peers, persisted
	// for WAL-backed ones) and is rotated by Reset when the receiver asks
	// for a fresh stream. Acks carrying another epoch are stale and
	// ignored.
	epoch uint64
	// resets counts stream resets — a generation guard so an in-flight
	// transmission of the old stream cannot mark a renumbered entry sent.
	resets       uint64
	entries      []outEntry // unacked, in sequence order
	nextSeq      uint64     // last assigned sequence number
	acked        uint64     // highest cumulative ack received
	ackEpoch     uint64     // stream epoch of the pending inbound ack
	pendingAck   uint64     // highest inbox seq to acknowledge back to dst (0 = none)
	controls     []protocol.Payload
	flushing     bool          // a flusher (goroutine or inline) is mid-send
	stalled      bool          // the last flush attempt failed
	backoff      time.Duration // current backoff step (doubles per failure)
	nextTry      time.Time     // backoff gate for retries after a failure
	lastAdvert   time.Time     // when the last anti-entropy digest advert went out
	retransmitAt time.Time     // ack deadline: pushed on every data transmission

	// Flow-control state. spaceWait, when non-nil, is closed (and cleared)
	// whenever queue space frees up — blocked EnqueueDataCtx callers wait on
	// it and re-check admission. lastProgress is the shed clock: the last
	// instant the destination acked something, the queue's pending era
	// began, or the stream was reset; a queue with entries but no progress
	// for the configured window is persistently unackable. shedding guards
	// against dispatching a second shed while one is in flight.
	spaceWait    chan struct{}
	lastProgress time.Time
	shedding     bool

	wake chan struct{} // one-slot: new work or ack arrived
}

func (dq *sendSession) signal() {
	select {
	case dq.wake <- struct{}{}:
	default:
	}
}

// notifySpaceLocked releases every blocked admission waiter; dq.mu held.
func (dq *sendSession) notifySpaceLocked() {
	if dq.spaceWait != nil {
		close(dq.spaceWait)
		dq.spaceWait = nil
	}
}
