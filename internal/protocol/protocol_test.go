package protocol

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/value"
)

func TestFactsMsgRoundTrip(t *testing.T) {
	env := Envelope{From: "a", To: "b", Seq: 3, Msg: FactsMsg{Ops: []FactDelta{
		{Fact: ast.NewFact("r", "b", value.Str("x"), value.Int(1))},
		{Delete: true, Fact: ast.NewFact("r", "b", value.Blob([]byte{0xCA}), value.Float(1.5), value.Bool(true))},
	}}}
	b, err := Encode(env)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEnvelope(b)
	if err != nil {
		t.Fatal(err)
	}
	msg := got.Msg.(FactsMsg)
	if len(msg.Ops) != 2 || msg.Ops[0].Delete || !msg.Ops[1].Delete {
		t.Fatalf("ops = %v", msg.Ops)
	}
	if !msg.Ops[0].Fact.Equal(env.Msg.(FactsMsg).Ops[0].Fact) {
		t.Errorf("fact 0 corrupted: %v", msg.Ops[0].Fact)
	}
	if !msg.Ops[1].Fact.Equal(env.Msg.(FactsMsg).Ops[1].Fact) {
		t.Errorf("fact 1 corrupted: %v", msg.Ops[1].Fact)
	}
}

func TestDelegationMsgRoundTrip(t *testing.T) {
	rule := ast.Rule{
		ID:     "r1",
		Origin: "a",
		Op:     ast.Delete,
		Head:   ast.Atom{Rel: ast.CStr("out"), Peer: ast.V("p"), Args: []ast.Term{ast.V("x"), ast.CInt(5)}},
		Body: []ast.Atom{
			{Neg: true, Rel: ast.V("r"), Peer: ast.CStr("b"), Args: []ast.Term{ast.V("x")}},
		},
	}
	env := Envelope{From: "a", To: "b", Seq: 1, Msg: DelegationMsg{RuleID: "r1", Rules: []ast.Rule{rule}}}
	b, err := Encode(env)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEnvelope(b)
	if err != nil {
		t.Fatal(err)
	}
	dm := got.Msg.(DelegationMsg)
	if dm.RuleID != "r1" || len(dm.Rules) != 1 {
		t.Fatalf("msg = %+v", dm)
	}
	if !dm.Rules[0].Equal(rule) || dm.Rules[0].Op != ast.Delete || dm.Rules[0].Origin != "a" {
		t.Errorf("rule corrupted: %v vs %v", dm.Rules[0], rule)
	}
}

func TestWithdrawalEncodesEmptyRules(t *testing.T) {
	env := Envelope{From: "a", To: "b", Msg: DelegationMsg{RuleID: "r1"}}
	b, err := Encode(env)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEnvelope(b)
	if err != nil {
		t.Fatal(err)
	}
	if dm := got.Msg.(DelegationMsg); len(dm.Rules) != 0 {
		t.Errorf("withdrawal decoded with rules: %v", dm.Rules)
	}
}

func TestControlMsgRoundTrip(t *testing.T) {
	for _, kind := range []ControlKind{ControlPing, ControlPong, ControlBye} {
		env := Envelope{From: "a", To: "b", Msg: ControlMsg{Kind: kind, Token: 7}}
		b, err := Encode(env)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeEnvelope(b)
		if err != nil {
			t.Fatal(err)
		}
		cm := got.Msg.(ControlMsg)
		if cm.Kind != kind || cm.Token != 7 {
			t.Errorf("control = %+v", cm)
		}
	}
}

func TestEnvelopeString(t *testing.T) {
	env := Envelope{From: "a", To: "b", Seq: 9, Msg: FactsMsg{}}
	if got := env.String(); got == "" {
		t.Error("empty String()")
	}
	d := FactDelta{Delete: true, Fact: ast.NewFact("r", "p", value.Int(1))}
	if got := d.String(); got != "-r@p(1)" {
		t.Errorf("delta string = %q", got)
	}
}
