package protocol

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/value"
)

func TestFactsMsgRoundTrip(t *testing.T) {
	env := Envelope{From: "a", To: "b", Seq: 3, Msg: FactsMsg{Ops: []FactDelta{
		{Fact: ast.NewFact("r", "b", value.Str("x"), value.Int(1))},
		{Delete: true, Fact: ast.NewFact("r", "b", value.Blob([]byte{0xCA}), value.Float(1.5), value.Bool(true))},
	}}}
	b, err := Encode(env)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEnvelope(b)
	if err != nil {
		t.Fatal(err)
	}
	msg := got.Msg.(FactsMsg)
	if len(msg.Ops) != 2 || msg.Ops[0].Delete || !msg.Ops[1].Delete {
		t.Fatalf("ops = %v", msg.Ops)
	}
	if !msg.Ops[0].Fact.Equal(env.Msg.(FactsMsg).Ops[0].Fact) {
		t.Errorf("fact 0 corrupted: %v", msg.Ops[0].Fact)
	}
	if !msg.Ops[1].Fact.Equal(env.Msg.(FactsMsg).Ops[1].Fact) {
		t.Errorf("fact 1 corrupted: %v", msg.Ops[1].Fact)
	}
}

func TestDelegationMsgRoundTrip(t *testing.T) {
	rule := ast.Rule{
		ID:     "r1",
		Origin: "a",
		Op:     ast.Delete,
		Head:   ast.Atom{Rel: ast.CStr("out"), Peer: ast.V("p"), Args: []ast.Term{ast.V("x"), ast.CInt(5)}},
		Body: []ast.Atom{
			{Neg: true, Rel: ast.V("r"), Peer: ast.CStr("b"), Args: []ast.Term{ast.V("x")}},
		},
	}
	env := Envelope{From: "a", To: "b", Seq: 1, Msg: DelegationMsg{RuleID: "r1", Rules: []ast.Rule{rule}}}
	b, err := Encode(env)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEnvelope(b)
	if err != nil {
		t.Fatal(err)
	}
	dm := got.Msg.(DelegationMsg)
	if dm.RuleID != "r1" || len(dm.Rules) != 1 {
		t.Fatalf("msg = %+v", dm)
	}
	if !dm.Rules[0].Equal(rule) || dm.Rules[0].Op != ast.Delete || dm.Rules[0].Origin != "a" {
		t.Errorf("rule corrupted: %v vs %v", dm.Rules[0], rule)
	}
}

func TestWithdrawalEncodesEmptyRules(t *testing.T) {
	env := Envelope{From: "a", To: "b", Msg: DelegationMsg{RuleID: "r1"}}
	b, err := Encode(env)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEnvelope(b)
	if err != nil {
		t.Fatal(err)
	}
	if dm := got.Msg.(DelegationMsg); len(dm.Rules) != 0 {
		t.Errorf("withdrawal decoded with rules: %v", dm.Rules)
	}
}

func TestControlMsgRoundTrip(t *testing.T) {
	for _, kind := range []ControlKind{ControlPing, ControlPong, ControlBye} {
		env := Envelope{From: "a", To: "b", Msg: ControlMsg{Kind: kind, Token: 7}}
		b, err := Encode(env)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeEnvelope(b)
		if err != nil {
			t.Fatal(err)
		}
		cm := got.Msg.(ControlMsg)
		if cm.Kind != kind || cm.Token != 7 {
			t.Errorf("control = %+v", cm)
		}
	}
}

// TestRangedMessagesRoundTrip: the bisection dialogue's four message types
// and the chunk/advert flags survive the wire.
func TestRangedMessagesRoundTrip(t *testing.T) {
	full := HashRange{Lo: 0, Hi: ^uint64(0)}
	msgs := []Payload{
		ResyncRequestMsg{Advert: true},
		SnapshotMsg{More: true, Ops: []FactDelta{{Fact: ast.NewFact("r", "b", value.Int(1))}}},
		RangeDigestRequestMsg{RelID: "r@b", Ranges: []HashRange{full, {Lo: 1, Hi: 2}}},
		RangeDigestMsg{Epoch: 3, AsOfSeq: 9, RelID: "r@b", Ranges: []RangeDigest{
			{Lo: 1, Hi: 2, Hash: 0xDEAD, Count: 4},
		}},
		RangeRepairRequestMsg{RelID: "r@b", Ranges: []HashRange{{Lo: 5, Hi: 6}}},
		RangeRepairMsg{RelID: "r@b", Ranges: []HashRange{full}, Ops: []FactDelta{
			{Maint: true, Fact: ast.NewFact("r", "b", value.Str("x"))},
		}},
	}
	for _, msg := range msgs {
		b, err := Encode(Envelope{From: "a", To: "b", Msg: msg})
		if err != nil {
			t.Fatalf("%T: %v", msg, err)
		}
		got, err := DecodeEnvelope(b)
		if err != nil {
			t.Fatalf("%T: %v", msg, err)
		}
		switch m := got.Msg.(type) {
		case ResyncRequestMsg:
			if !m.Advert || m.Reset {
				t.Errorf("resync request = %+v", m)
			}
		case SnapshotMsg:
			if !m.More || len(m.Ops) != 1 {
				t.Errorf("snapshot chunk = %+v", m)
			}
		case RangeDigestRequestMsg:
			if m.RelID != "r@b" || len(m.Ranges) != 2 || m.Ranges[0] != full {
				t.Errorf("range digest request = %+v", m)
			}
		case RangeDigestMsg:
			if m.Epoch != 3 || m.AsOfSeq != 9 || len(m.Ranges) != 1 || m.Ranges[0].Hash != 0xDEAD || m.Ranges[0].Count != 4 {
				t.Errorf("range digest = %+v", m)
			}
		case RangeRepairRequestMsg:
			if m.RelID != "r@b" || len(m.Ranges) != 1 || m.Ranges[0] != (HashRange{Lo: 5, Hi: 6}) {
				t.Errorf("range repair request = %+v", m)
			}
		case RangeRepairMsg:
			if m.RelID != "r@b" || len(m.Ranges) != 1 || len(m.Ops) != 1 || !m.Ops[0].Maint {
				t.Errorf("range repair = %+v", m)
			}
		default:
			t.Errorf("decoded unexpected type %T", got.Msg)
		}
	}
}

// TestRangedMessagesInsideDataMsg: the sequenced carriers (RangeRepairMsg,
// chunked SnapshotMsg) also ride inside DataMsg, gob's interface-in-struct
// case.
func TestRangedMessagesInsideDataMsg(t *testing.T) {
	inner := RangeRepairMsg{RelID: "r@b", Ranges: []HashRange{{Lo: 7, Hi: 8}}}
	b, err := Encode(Envelope{From: "a", To: "b", Msg: DataMsg{Epoch: 2, Seq: 5, Msg: inner}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEnvelope(b)
	if err != nil {
		t.Fatal(err)
	}
	dm := got.Msg.(DataMsg)
	rm, ok := dm.Msg.(RangeRepairMsg)
	if !ok || dm.Epoch != 2 || dm.Seq != 5 || rm.RelID != "r@b" || len(rm.Ranges) != 1 {
		t.Fatalf("decoded %+v", got.Msg)
	}
}

func TestEnvelopeString(t *testing.T) {
	env := Envelope{From: "a", To: "b", Seq: 9, Msg: FactsMsg{}}
	if got := env.String(); got == "" {
		t.Error("empty String()")
	}
	d := FactDelta{Delete: true, Fact: ast.NewFact("r", "p", value.Int(1))}
	if got := d.String(); got != "-r@p(1)" {
		t.Errorf("delta string = %q", got)
	}
}
