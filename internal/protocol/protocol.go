// Package protocol defines the messages WebdamLog peers exchange at the end
// of each computation stage (paper §2: "the peer sends facts (updates) and
// rules (delegations) to other peers"), and their gob-based wire codec.
package protocol

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/ast"
)

// FactDelta is one fact transmission: an insertion (default) or a deletion
// of a fact in a relation at the destination peer.
//
// Maint marks a *maintained* delta: the sender's rule program currently
// derives (insert) or no longer derives (delete) the fact, and will send the
// opposite delta when that changes. At the destination, maintained deltas
// into an intensional relation add or drop per-sender support for the tuple
// (store support bookkeeping) instead of acting like one-shot updates; a
// maintained delete of a tuple that still has another derivation leaves it
// standing. Non-maintained deltas keep their historical meaning: durable
// updates for extensional relations, transient one-stage seeds for
// intensional ones.
type FactDelta struct {
	Delete bool
	Maint  bool
	Fact   ast.Fact
}

// String renders the delta for logs.
func (d FactDelta) String() string {
	if d.Delete {
		return "-" + d.Fact.String()
	}
	return "+" + d.Fact.String()
}

// FactsMsg carries a batch of fact deltas for relations at the destination.
// Deltas for extensional relations are durable updates. Non-maintained
// deltas for intensional relations are transient facts that hold for the
// destination's next stage only; maintained deltas (FactDelta.Maint) add or
// drop standing per-sender support instead.
//
// FactsMsg is the wire unit of atomicity: everything it carries is ingested
// by the destination in a single stage, so senders batching N updates into
// one message get one remote fixpoint instead of up to N.
type FactsMsg struct {
	Ops []FactDelta
}

// Append adds one delta, for accumulating per-destination batches.
func (m *FactsMsg) Append(del bool, f ast.Fact) {
	m.Ops = append(m.Ops, FactDelta{Delete: del, Fact: f})
}

// Len returns the number of deltas carried.
func (m FactsMsg) Len() int { return len(m.Ops) }

// DelegationMsg installs, at the destination, the current residual-rule set
// for one source rule of the sender. It *replaces* any set previously
// delegated by (sender, RuleID) — an empty Rules slice withdraws the
// delegation entirely. This implements the paper's delegation maintenance:
// delegations are recomputed at every stage of the delegating peer.
type DelegationMsg struct {
	RuleID string
	Rules  []ast.Rule
}

// DataMsg wraps a payload with a per-(sender, destination) outbox sequence
// number, starting at 1. It is the unit of the peer layer's at-least-once
// delivery: the sender's outbox retains the message until the destination
// acknowledges it (AckMsg), retransmitting on failure or timeout, and the
// destination applies a sender's DataMsgs strictly in sequence order —
// replays are re-acknowledged without being re-applied, and gaps are dropped
// to be retransmitted — so every wrapped payload is applied exactly once no
// matter how often the transport duplicates, drops or reorders it.
//
// Epoch identifies the sender's message stream: random per outbox instance
// for volatile peers, persisted (and hence stable across restarts) for
// WAL-backed peers. A receiver seeing a new epoch start at Seq 1 adopts it
// with a fresh watermark, so a restarted volatile sender's re-sends are
// applied instead of being misread as replays of the old stream.
type DataMsg struct {
	Epoch uint64
	Seq   uint64
	Msg   Payload
}

// AckMsg acknowledges application of every DataMsg from the ack's receiver
// with sequence number <= Seq (cumulative) in the given stream Epoch.
// Senders ignore acks for epochs they are not running — a stale ack from
// before a restart must not drop entries of the new stream. Acks are
// best-effort: a lost ack merely causes a retransmission, which the
// destination re-acks.
type AckMsg struct {
	Epoch uint64
	Seq   uint64
}

// RelDigest is an order-insensitive summary of one relation's maintained
// fact set: the XOR fold of the member tuples' key hashes (store.KeyHash)
// plus the member count. Both ends of a digest comparison compute it the
// same way, so equal sets compare equal without shipping or walking tuples.
type RelDigest struct {
	Hash  uint64
	Count uint64
}

// DigestMsg is the sender's anti-entropy advertisement: per relation at the
// receiver, a digest of every fact the sender's rule program currently
// derives for it and maintains there (its remote view), plus — per source
// rule — a fingerprint hash of the residual rule set currently delegated to
// the receiver. It is valid as of stream position (Epoch, AsOfSeq) — a
// receiver that has not yet applied the stream up to AsOfSeq in that epoch
// is merely behind and must ignore the advert rather than read the lag as
// divergence. A receiver that is caught up and whose per-sender supported
// sets (or installed delegations) digest differently answers with a
// ResyncRequestMsg. Adverts are unsequenced and best-effort: a lost one is
// repeated by the sender's periodic timer.
type DigestMsg struct {
	Epoch   uint64
	AsOfSeq uint64
	Rels    map[string]RelDigest
	Deleg   map[string]uint64
}

// ResyncRequestMsg asks the message's *receiver* (the stream's sender) to
// repair the requester's copy of the maintained view. With Reset false the
// sender enqueues a SnapshotMsg into the existing stream (digest mismatch:
// content drifted, stream healthy). With Reset true the requester cannot
// follow the stream at all — typically it restarted and lost its watermark
// while the sender's stream is mid-sequence — so the sender tears the
// stream down: fresh per-stream epoch, a snapshot as the new sequence 1,
// surviving pending entries renumbered behind it. With Advert true the
// requester holds a large, probably-nearly-correct ledger (a sender restart
// adopted a fresh epoch over intact receiver state) and asks for an
// immediate digest advert instead of a view re-ship: the advert comparison
// then routes the repair — ranged if the trees are big, snapshot if not,
// nothing at all if the ledger already matches. Requests are idempotent and
// best-effort; the requester rate-limits and re-asks.
type ResyncRequestMsg struct {
	Reset  bool
	Advert bool
}

// SnapshotMsg carries the sender's complete maintained view for the
// receiver — every fact it currently derives there, as maintained inserts.
// It rides the sequenced stream (inside a DataMsg), so it is ordered
// exactly-once against live deltas: deltas enqueued before the snapshot are
// already reflected in it, deltas after it apply on top. On application the
// receiver sets the sender's support to exactly the snapshot: facts it
// carries gain support (idempotently), and per-sender support the snapshot
// no longer covers is dropped — stale tuples from before a crash die here.
//
// Large views ship as a contiguous run of bounded chunks rather than one
// giant gob message: every chunk but the last sets More, and the receiver
// buffers chunks (they advance the watermark and ack like any sequenced
// message) and applies the whole snapshot atomically at the final one. A
// stream reset or epoch change discards a partial buffer — the new stream
// re-ships its snapshot from chunk one.
type SnapshotMsg struct {
	Ops  []FactDelta
	More bool
}

// HashRange is an inclusive interval [Lo, Hi] on the canonical 64-bit
// key-hash line (store.KeyHash of the tuple key) — the unit the bisection
// dialogue negotiates over. The full range is [0, ^uint64(0)].
type HashRange struct {
	Lo, Hi uint64
}

// RangeDigest is the digest of one hash range of a relation's maintained
// fact set: the XOR fold of the member key hashes in the range plus their
// count, exactly a store.MerkleTree range read. Because the fold is over
// members — not over tree pages — both ends compare any range without
// agreeing on tree shapes.
type RangeDigest struct {
	Lo, Hi uint64
	Hash   uint64
	Count  uint64
}

// RangeDigestRequestMsg asks the stream's sender to digest the given hash
// ranges of one relation's maintained view — one round of the bisection
// dialogue, sent by a receiver whose ledger digest disagrees with an
// advert. Unsequenced and best-effort: a lost round is restarted by the
// next periodic advert.
type RangeDigestRequestMsg struct {
	RelID  string
	Ranges []HashRange
}

// RangeDigestMsg answers a RangeDigestRequestMsg with the sender-side
// digests of the requested ranges, valid as of stream position (Epoch,
// AsOfSeq) exactly like a DigestMsg: a receiver that is not caught up to
// that position must drop the reply (in-flight deltas are still deciding
// the comparison). The receiver recurses on mismatching ranges — asking for
// their subranges — and requests repair for mismatching ranges already at
// leaf size.
type RangeDigestMsg struct {
	Epoch   uint64
	AsOfSeq uint64
	RelID   string
	Ranges  []RangeDigest
}

// RangeRepairRequestMsg asks the stream's sender to re-ship the given hash
// ranges of one relation's maintained view as a ranged repair. Unsequenced
// and best-effort, like every repair request.
type RangeRepairRequestMsg struct {
	RelID  string
	Ranges []HashRange
}

// RangeRepairMsg is the ranged analogue of SnapshotMsg: the authoritative
// statement "my maintained view of RelID, restricted to Ranges, is exactly
// Ops". It rides the sequenced stream, so it is ordered exactly-once
// against live deltas. On application the receiver drops ledger support for
// every tuple inside the ranges that Ops does not cover and applies Ops as
// maintained inserts — a range-scoped snapshot, idempotent and safe to
// apply even if the ranges no longer mismatch. A repair covering many
// ranges may arrive as several messages, each self-contained over its own
// range subset.
type RangeRepairMsg struct {
	RelID  string
	Ranges []HashRange
	Ops    []FactDelta
}

// MuxFrame wraps one peer-to-peer envelope for transit over a shared
// multiplexed link (transport.Mux): many (from, to) streams ride a single
// carrier connection as tagged frames, and the mux on the receiving side
// routes the inner envelope to the local endpoint it addresses. The inner
// envelope keeps its original From/To/Seq, so per-pair FIFO order and the
// outbox's sequencing survive the multiplexing unchanged.
type MuxFrame struct {
	Env Envelope
}

// ControlKind enumerates control messages.
type ControlKind uint8

// Control message kinds.
const (
	// ControlPing asks the destination to acknowledge liveness (used by the
	// TCP transport's health checks and by tests).
	ControlPing ControlKind = iota
	// ControlPong answers a ping.
	ControlPong
	// ControlBye announces that the sender is shutting down.
	ControlBye
)

// ControlMsg is a transport-level control message.
type ControlMsg struct {
	Kind  ControlKind
	Token uint64
}

// Payload is the interface implemented by all message payloads.
type Payload interface {
	payload()
}

func (FactsMsg) payload()         {}
func (DelegationMsg) payload()    {}
func (ControlMsg) payload()       {}
func (DataMsg) payload()          {}
func (AckMsg) payload()           {}
func (DigestMsg) payload()        {}
func (ResyncRequestMsg) payload() {}
func (SnapshotMsg) payload()      {}

func (MuxFrame) payload()              {}
func (RangeDigestRequestMsg) payload() {}
func (RangeDigestMsg) payload()        {}
func (RangeRepairRequestMsg) payload() {}
func (RangeRepairMsg) payload()        {}

// Envelope wraps a payload with routing metadata. Seq is a per-sender
// sequence number; transports deliver envelopes from one sender in Seq
// order (FIFO links, as the paper's TCP channels provide).
type Envelope struct {
	From string
	To   string
	Seq  uint64
	Msg  Payload
}

// String renders the envelope for logs.
func (e Envelope) String() string {
	return fmt.Sprintf("%s->%s #%d %T", e.From, e.To, e.Seq, e.Msg)
}

func init() {
	gob.Register(FactsMsg{})
	gob.Register(DelegationMsg{})
	gob.Register(ControlMsg{})
	gob.Register(DataMsg{})
	gob.Register(AckMsg{})
	gob.Register(DigestMsg{})
	gob.Register(ResyncRequestMsg{})
	gob.Register(SnapshotMsg{})
	gob.Register(MuxFrame{})
	gob.Register(RangeDigestRequestMsg{})
	gob.Register(RangeDigestMsg{})
	gob.Register(RangeRepairRequestMsg{})
	gob.Register(RangeRepairMsg{})
}

// Encode serializes an envelope with gob.
func Encode(env Envelope) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&env); err != nil {
		return nil, fmt.Errorf("protocol: encoding envelope: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeEnvelope deserializes an envelope produced by Encode.
func DecodeEnvelope(b []byte) (Envelope, error) {
	var env Envelope
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&env); err != nil {
		return Envelope{}, fmt.Errorf("protocol: decoding envelope: %w", err)
	}
	return env, nil
}

// payloadBox adapts a bare Payload to gob's interface encoding.
type payloadBox struct {
	Msg Payload
}

// EncodePayload serializes a bare payload (outbox persistence).
func EncodePayload(p Payload) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&payloadBox{Msg: p}); err != nil {
		return nil, fmt.Errorf("protocol: encoding payload: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodePayload deserializes a payload produced by EncodePayload.
func DecodePayload(b []byte) (Payload, error) {
	var box payloadBox
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&box); err != nil {
		return nil, fmt.Errorf("protocol: decoding payload: %w", err)
	}
	return box.Msg, nil
}
