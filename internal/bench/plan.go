package bench

import (
	"fmt"
	"time"

	"repro/internal/ast"
	"repro/internal/engine"
	"repro/internal/store"
	"repro/internal/value"
)

// PlannerResult measures one mode of the P9 adversarial-join experiment.
type PlannerResult struct {
	N        int           // rows in each of the three big relations
	Rows     int           // result rows in out@local (must agree across modes)
	FP       uint64        // content fingerprint of out@local
	Setup    time.Duration // load + warm-up stage (index builds, first plans)
	PerStage time.Duration // steady-state full recomputation of the view
}

// RunPlannerJoin builds the adversarially ordered four-way join behind
// experiment P9 and measures a steady-state stage with or without the join
// planner. Three chain relations of n rows each feed a four-row selector,
// and the rule names them largest-first:
//
//	out@local($a,$d) :- src@local($a,$b), mid@local($b,$c),
//	                    dst@local($c,$d), sel@local($d);
//
// Written order starts from the n-row src and drags every one of its rows
// through the chain before sel prunes; the planner starts from sel and
// probes the chain backwards, touching a handful of tuples. A warm-up
// stage (reported as Setup) builds each mode's indexes and materializes
// the view once, so PerStage isolates the join-order cost: both modes then
// recompute the same view from the same warm store.
func RunPlannerJoin(n int, planner bool) (PlannerResult, error) {
	db := store.New()
	decl := func(name string, kind ast.RelKind, cols ...string) (*store.Relation, error) {
		return db.Declare(store.Schema{Name: name, Peer: "local", Kind: kind, Cols: cols})
	}
	src, err := decl("src", ast.Extensional, "a", "b")
	if err != nil {
		return PlannerResult{}, err
	}
	mid, err := decl("mid", ast.Extensional, "b", "c")
	if err != nil {
		return PlannerResult{}, err
	}
	dst, err := decl("dst", ast.Extensional, "c", "d")
	if err != nil {
		return PlannerResult{}, err
	}
	sel, err := decl("sel", ast.Extensional, "d")
	if err != nil {
		return PlannerResult{}, err
	}
	if _, err := decl("out", ast.Intensional, "a", "d"); err != nil {
		return PlannerResult{}, err
	}

	opts := engine.DefaultOptions()
	opts.Planner = planner
	e := engine.New("local", db, opts)
	prog, err := e.CompileProgram([]ast.Rule{mustRule("p9", `
		out@local($a,$d) :- src@local($a,$b), mid@local($b,$c), dst@local($c,$d), sel@local($d);`)})
	if err != nil {
		return PlannerResult{}, err
	}

	start := time.Now()
	for _, r := range []*store.Relation{src, mid, dst} {
		tuples := make([]value.Tuple, n)
		for i := 0; i < n; i++ {
			tuples[i] = value.Tuple{value.Int(int64(i)), value.Int(int64(i))}
		}
		r.InsertMany(tuples)
	}
	const selected = 4
	for i := 0; i < selected; i++ {
		sel.Insert(value.Tuple{value.Int(int64(i))})
	}
	rv := engine.NewRemoteView()
	warm := e.RunStageFull(prog, nil, rv) // builds this mode's indexes, first plans
	if err := joinErrs(warm.Errors); err != nil {
		return PlannerResult{}, err
	}
	out := PlannerResult{N: n, Setup: time.Since(start)}

	const reps = 3
	start = time.Now()
	for i := 0; i < reps; i++ {
		res := e.RunStageFull(prog, nil, rv)
		if err := joinErrs(res.Errors); err != nil {
			return PlannerResult{}, err
		}
	}
	out.PerStage = time.Since(start) / reps

	view := db.Get("out", "local")
	out.Rows = view.Len()
	out.FP = view.Fingerprint()
	if out.Rows != selected {
		return out, fmt.Errorf("planner join: out@local has %d rows, want %d", out.Rows, selected)
	}
	return out, nil
}
