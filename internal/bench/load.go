package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/daemon"
)

// DaemonLoadResult measures experiment P10: a running wdld daemon under
// heavy concurrent apply traffic against a derived-view workload, with
// bounded queues doing the flow control.
type DaemonLoadResult struct {
	Clients  int
	Requests int // total HTTP applies issued
	Updates  int // total facts applied (Requests * batch)
	Elapsed  time.Duration

	// Apply latency over all requests, as observed by the clients.
	P50, P99, Max time.Duration
	// UpdatesPerSec is sustained ingest throughput (facts/s).
	UpdatesPerSec float64

	// MaxOutboxDepth is the highest hub outbox depth any monitor sample
	// saw. Bounded flow control keeps it near the configured limit; an
	// unbounded queue would track the total update count instead.
	MaxOutboxDepth int
	// SubscriptionDrops counts watcher subscription streams shed for
	// falling behind — the subscription queue's bound doing its job under
	// burst. The consumer resubscribes and re-baselines each time, and
	// its reconstructed view must still converge to every fact.
	SubscriptionDrops uint64
}

// RunDaemonLoad starts an in-process wdld daemon — a hub peer shipping a
// maintained derived view over TCP to a watcher peer with a live
// subscription attached — then aims `clients` concurrent HTTP clients at
// the admin /apply endpoint, each issuing `requests` batches of `batch`
// unique facts. Queues are bounded (limit entries, blocking admission);
// a monitor samples the hub's outbox depth throughout and the run fails
// if any queue exceeds depthCeiling (growth without bound) or if the
// subscription stream drops.
func RunDaemonLoad(clients, requests, batch, limit, depthCeiling int) (DaemonLoadResult, error) {
	res := DaemonLoadResult{Clients: clients, Requests: clients * requests, Updates: clients * requests * batch}
	cfg := &daemon.Config{
		OutboxLimit:   limit,
		MaxPendingOps: limit,
		Peers: []daemon.PeerConfig{
			{
				Name: "hub",
				Program: `
					relation extensional data@hub(x);
					relation extensional mirror@watcher(x);
					mirror@watcher($x) :- data@hub($x);
				`,
			},
			{
				Name:    "watcher",
				Program: `relation extensional mirror@watcher(x);`,
			},
		},
	}
	d, err := daemon.New(cfg)
	if err != nil {
		return res, err
	}
	defer d.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := d.Start(ctx); err != nil {
		return res, err
	}
	hub, watcher := d.Peer("hub"), d.Peer("watcher")

	// A live subscription consumer on the derived view, maintaining its
	// own replica. Its channel is bounded (SubscribeBuffer): a burst it
	// cannot absorb sheds the stream, and the consumer resubscribes and
	// re-baselines from a Query — inserts are unique here, so replaying a
	// delta already captured by the baseline is a harmless set union.
	var replicaMu sync.Mutex
	replica := map[string]bool{}
	consumerDone := make(chan struct{})
	go func() {
		defer close(consumerDone)
		for ctx.Err() == nil {
			deltas, err := watcher.Subscribe(ctx, "mirror")
			if err != nil {
				return
			}
			replicaMu.Lock()
			for _, t := range watcher.Query("mirror") {
				replica[t.Key()] = true
			}
			replicaMu.Unlock()
			for dl := range deltas {
				replicaMu.Lock()
				if dl.Delete {
					delete(replica, dl.Tuple.Key())
				} else {
					replica[dl.Tuple.Key()] = true
				}
				replicaMu.Unlock()
			}
		}
	}()

	// The queue monitor: unbounded growth fails the run.
	var maxDepth atomic.Int64
	monErr := make(chan error, 1)
	monDone := make(chan struct{})
	go func() {
		defer close(monDone)
		for {
			total, _ := hub.OutboxPending()
			if int64(total) > maxDepth.Load() {
				maxDepth.Store(int64(total))
			}
			if total > depthCeiling {
				select {
				case monErr <- fmt.Errorf("p10: hub outbox depth %d exceeded ceiling %d — queue growing without bound", total, depthCeiling):
				default:
				}
				return
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(2 * time.Millisecond):
			}
		}
	}()

	url := "http://" + d.AdminAddr() + "/apply"
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        clients,
		MaxIdleConnsPerHost: clients,
	}}
	lat := make([]time.Duration, clients*requests)
	errCh := make(chan error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < requests; r++ {
				facts := make([]string, batch)
				for f := 0; f < batch; f++ {
					facts[f] = fmt.Sprintf(`data@hub("c%d_r%d_f%d")`, c, r, f)
				}
				body, _ := json.Marshal(map[string]any{"peer": "hub", "insert": facts})
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					select {
					case errCh <- fmt.Errorf("p10: client %d: %w", c, err):
					default:
					}
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					select {
					case errCh <- fmt.Errorf("p10: client %d: apply returned %d", c, resp.StatusCode):
					default:
					}
					return
				}
				lat[c*requests+r] = time.Since(t0)
			}
		}(c)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	select {
	case err := <-errCh:
		return res, err
	default:
	}
	select {
	case err := <-monErr:
		return res, err
	default:
	}

	// Wait for the view to converge at the watcher and the subscription to
	// deliver every delta, then drain the daemon.
	deadline := time.Now().Add(60 * time.Second)
	for len(watcher.Query("mirror")) != res.Updates {
		if time.Now().After(deadline) {
			return res, fmt.Errorf("p10: watcher converged to %d/%d tuples", len(watcher.Query("mirror")), res.Updates)
		}
		time.Sleep(5 * time.Millisecond)
	}
	drainCtx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer dcancel()
	if err := d.Drain(drainCtx); err != nil {
		return res, err
	}
	replicaSize := func() int {
		replicaMu.Lock()
		defer replicaMu.Unlock()
		return len(replica)
	}
	for replicaSize() != res.Updates {
		if time.Now().After(deadline) {
			return res, fmt.Errorf("p10: subscription replica converged to %d/%d tuples", replicaSize(), res.Updates)
		}
		time.Sleep(5 * time.Millisecond)
	}
	res.SubscriptionDrops = watcher.Stats().SubscriptionDrops
	res.MaxOutboxDepth = int(maxDepth.Load())

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	res.P50 = lat[len(lat)/2]
	res.P99 = lat[len(lat)*99/100]
	res.Max = lat[len(lat)-1]
	res.UpdatesPerSec = float64(res.Updates) / res.Elapsed.Seconds()
	return res, nil
}
