package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/ast"
	"repro/internal/peer"
	"repro/internal/transport"
	"repro/internal/value"
)

// OutboxLatencyResult measures experiment P7a: stage commit latency with a
// slow destination link. The outbox decouples the two — EmitAvg must stay
// in microseconds while E2EAvg tracks the injected RTT.
type OutboxLatencyResult struct {
	Updates int
	RTT     time.Duration
	// EmitAvg is the mean stage emit step (enqueue-only under the outbox).
	EmitAvg time.Duration
	// StageAvg is the mean full stage latency at the sender.
	StageAvg time.Duration
	// E2EAvg is the mean insert-to-converged latency at the receiver.
	E2EAvg time.Duration
}

// RunOutboxLatency drives single-fact updates from a sender to a maintained
// remote view across a link with the given injected RTT, measuring how long
// the sender's stage takes (commit path) versus how long the update takes
// to appear at the receiver (delivery path).
func RunOutboxLatency(updates int, rtt time.Duration) (OutboxLatencyResult, error) {
	n := peer.NewNetwork()
	slow := transport.Faulty(n.Bus().Endpoint("sender"), transport.FaultConfig{Latency: rtt})
	sender, err := peer.New(peer.Config{Name: "sender"}, slow)
	if err != nil {
		return OutboxLatencyResult{}, err
	}
	defer sender.Close()
	n.Add(sender)
	rcv, err := n.NewPeer(peer.Config{Name: "rcv"})
	if err != nil {
		return OutboxLatencyResult{}, err
	}
	defer rcv.Close()
	if err := rcv.DeclareRelation("view", ast.Intensional, "id"); err != nil {
		return OutboxLatencyResult{}, err
	}
	if err := sender.LoadSource(`
		relation extensional src@sender(id);
		view@rcv($id) :- src@sender($id);
	`); err != nil {
		return OutboxLatencyResult{}, err
	}
	sender.RunStage()

	var emit, stage, e2e time.Duration
	for i := 0; i < updates; i++ {
		if err := sender.Insert(ast.NewFact("src", "sender", value.Int(int64(i)))); err != nil {
			return OutboxLatencyResult{}, err
		}
		start := time.Now()
		rep := sender.RunStage()
		stage += rep.Duration()
		emit += rep.Emit
		want := i + 1
		deadline := time.Now().Add(10*time.Second + 4*rtt)
		for len(rcv.Query("view")) < want {
			if time.Now().After(deadline) {
				return OutboxLatencyResult{}, fmt.Errorf("update %d never reached the receiver", i)
			}
			if rcv.HasWork() {
				rcv.RunStage()
			}
			if sender.HasWork() {
				sender.RunStage() // ack processing (skipped stages)
			}
			time.Sleep(50 * time.Microsecond)
		}
		e2e += time.Since(start)
		// Settle the ack so the next round starts clean.
		for sender.HasWork() {
			sender.RunStage()
		}
	}
	u := time.Duration(updates)
	return OutboxLatencyResult{
		Updates:  updates,
		RTT:      rtt,
		EmitAvg:  emit / u,
		StageAvg: stage / u,
		E2EAvg:   e2e / u,
	}, nil
}

// FaultConvergenceResult measures experiment P7b: convergence of a
// maintained remote view over a faulty link.
type FaultConvergenceResult struct {
	Ops       int
	Converged bool
	Duration  time.Duration
	// Delivery work the faults induced.
	Enqueued    uint64
	Retransmits uint64
	SendErrors  uint64
	Faults      transport.FaultStats
}

// RunFaultConvergence applies a seeded random insert/delete stream to a
// base relation feeding a maintained remote view, with both links injecting
// the given faults, and reports whether (and how fast) the receiver
// converged to exactly the sender's final contents.
func RunFaultConvergence(ops int, cfg transport.FaultConfig) (FaultConvergenceResult, error) {
	n := peer.NewNetwork()
	tune := peer.Config{OutboxAckTimeout: 10 * time.Millisecond, OutboxBackoff: 2 * time.Millisecond}
	fa := transport.Faulty(n.Bus().Endpoint("a"), cfg)
	acfg := tune
	acfg.Name = "a"
	a, err := peer.New(acfg, fa)
	if err != nil {
		return FaultConvergenceResult{}, err
	}
	defer a.Close()
	n.Add(a)
	bcfgFault := cfg
	bcfgFault.Seed = cfg.Seed + 1
	fb := transport.Faulty(n.Bus().Endpoint("b"), bcfgFault)
	bcfg := tune
	bcfg.Name = "b"
	b, err := peer.New(bcfg, fb)
	if err != nil {
		return FaultConvergenceResult{}, err
	}
	defer b.Close()
	n.Add(b)

	if err := a.LoadSource(`
		relation extensional src@a(x);
		view@b($x) :- src@a($x);
	`); err != nil {
		return FaultConvergenceResult{}, err
	}
	if err := b.DeclareRelation("view", ast.Intensional, "x"); err != nil {
		return FaultConvergenceResult{}, err
	}

	driveAll := func() {
		for _, p := range []*peer.Peer{a, b} {
			if p.HasWork() {
				p.RunStage()
			}
		}
	}

	start := time.Now()
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	present := map[int64]bool{}
	for i := 0; i < ops; i++ {
		k := rng.Int63n(10)
		var err error
		if present[k] {
			err = a.Delete(ast.NewFact("src", "a", value.Int(k)))
		} else {
			err = a.Insert(ast.NewFact("src", "a", value.Int(k)))
		}
		if err != nil {
			return FaultConvergenceResult{}, err
		}
		present[k] = !present[k]
		driveAll()
	}
	var want []value.Tuple
	for k, in := range present {
		if in {
			want = append(want, value.Tuple{value.Int(k)})
		}
	}
	value.SortTuples(want)
	expected := fmt.Sprint(want)

	converged := false
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		driveAll()
		if fmt.Sprint(b.Query("view")) == expected {
			converged = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	st := a.Stats()
	return FaultConvergenceResult{
		Ops:         ops,
		Converged:   converged,
		Duration:    time.Since(start),
		Enqueued:    st.OutboxEnqueued,
		Retransmits: st.OutboxRetransmits,
		SendErrors:  st.OutboxSendErrors,
		Faults:      fa.Stats(),
	}, nil
}
