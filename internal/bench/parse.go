package bench

import (
	"repro/internal/ast"
	"repro/internal/parser"
)

func parseRule(src string) (ast.Rule, error) { return parser.ParseRule(src) }
