package bench

import (
	"fmt"
	"time"

	"repro/internal/ast"
	"repro/internal/engine"
	"repro/internal/store"
	"repro/internal/value"
	"runtime"
)

// CompiledResult measures one mode of the P9 compiled-execution tier.
type CompiledResult struct {
	N        int           // rows per base relation
	Rows     int           // result rows in out@local (must agree across modes)
	FP       uint64        // content fingerprint of out@local
	Setup    time.Duration // load + warm-up stage (indexes, plans, compiles)
	PerStage time.Duration // steady-state full recomputation (best of reps)
	Compiles uint64        // closure chains compiled (0 in the interpreter ablation)
}

// compiledSelectivity bounds the result: only rows with x below it survive
// the filter chain, so the steady-state stage is dominated by tuples that
// are scanned, bound, and filtered out — the per-tuple walk the compiler
// specializes — rather than by head insertion, which both modes pay
// identically.
const compiledSelectivity = 8

// compiledMode is one fully-built engine over its own store, ready to
// re-run the tier's stage.
type compiledMode struct {
	db   *store.Store
	e    *engine.Engine
	prog *engine.Program
	rv   *engine.RemoteView
	res  CompiledResult
}

func newCompiledMode(n int, compiled bool) (*compiledMode, error) {
	m := &compiledMode{db: store.New(), rv: engine.NewRemoteView()}
	start := time.Now()
	for _, name := range []string{"src", "mid"} {
		r, err := m.db.Declare(store.Schema{Name: name, Peer: "local", Kind: ast.Extensional, Cols: []string{"a", "b"}})
		if err != nil {
			return nil, err
		}
		tuples := make([]value.Tuple, n)
		for i := 0; i < n; i++ {
			tuples[i] = value.Tuple{value.Int(int64(i)), value.Int(int64(i))}
		}
		r.InsertMany(tuples)
	}
	if _, err := m.db.Declare(store.Schema{Name: "out", Peer: "local", Kind: ast.Intensional, Cols: []string{"a", "b"}}); err != nil {
		return nil, err
	}
	opts := engine.DefaultOptions()
	opts.Compiled = compiled
	m.e = engine.New("local", m.db, opts)
	prog, err := m.e.CompileProgram([]ast.Rule{mustRule("p9c", fmt.Sprintf(
		"out@local($x,$z) :- src@local($x,$y), le@builtin($x,$y), neq@builtin($y,-1), gt@builtin($y,-2), le@builtin(0,$x), ge@builtin($y,0), neq@builtin($x,-3), lt@builtin($x,%d), mid@local($y,$z), ge@builtin($z,$x);",
		compiledSelectivity))})
	if err != nil {
		return nil, err
	}
	m.prog = prog
	// Warm-up stage: builds indexes, plans, and compiled programs.
	if err := joinErrs(m.e.RunStageFull(prog, nil, m.rv).Errors); err != nil {
		return nil, err
	}
	m.res = CompiledResult{N: n, Setup: time.Since(start)}
	return m, nil
}

// rep runs one timed steady-state stage and keeps the best observation.
func (m *compiledMode) rep() error {
	start := time.Now()
	res := m.e.RunStageFull(m.prog, nil, m.rv)
	d := time.Since(start)
	if err := joinErrs(res.Errors); err != nil {
		return err
	}
	if m.res.PerStage == 0 || d < m.res.PerStage {
		m.res.PerStage = d
	}
	return nil
}

func (m *compiledMode) finish(compiled bool) (CompiledResult, error) {
	view := m.db.Get("out", "local")
	m.res.Rows = view.Len()
	m.res.FP = view.Fingerprint()
	m.res.Compiles, _, _ = m.e.CompiledStats()
	if compiled && m.res.Compiles == 0 {
		return m.res, fmt.Errorf("compiled join: compiled mode never compiled a rule")
	}
	if !compiled && m.res.Compiles != 0 {
		return m.res, fmt.Errorf("compiled join: interpreter ablation compiled %d rules", m.res.Compiles)
	}
	if m.res.Rows != compiledSelectivity {
		return m.res, fmt.Errorf("compiled join: out@local has %d rows, want %d", m.res.Rows, compiledSelectivity)
	}
	return m.res, nil
}

// RunCompiledJoin builds the probe-and-filter chain behind the P9 compiled
// tier and measures a steady-state stage with compiled execution on and
// off (everything else, planner included, at production defaults):
//
//	out@local($x,$z) :- src@local($x,$y), le@builtin($x,$y),
//	                    neq@builtin($y,-1), gt@builtin($y,-2),
//	                    le@builtin(0,$x), ge@builtin($y,0),
//	                    neq@builtin($x,-3), lt@builtin($x,8),
//	                    mid@local($y,$z), ge@builtin($z,$x);
//
// src and mid each hold n identity rows, so every steady-state stage walks
// a frontier of n tuples through variable binding, builtin filters, and —
// for the few filter survivors — a keyed join probe. At each visit the
// interpreter re-resolves relation and peer names, re-checks builtin
// arity, allocates argument and binding vectors, and recurses through a
// fresh continuation; the compiled closure chain binds fixed slots and
// runs precompiled comparisons against pre-resolved relations with reused
// key buffers.
//
// Each mode runs sequentially over its own store — only one store live at
// a time, with a forced collection before the timed reps — so neither
// mode's measurement pays for the other's live set or leftover garbage;
// each mode reports its best rep as the walk-cost estimate. GC pressure a
// mode generates itself (the interpreter's per-visit allocations, chiefly)
// stays inside its own reps, where it belongs.
func RunCompiledJoin(n int) (compiled, interpreted CompiledResult, err error) {
	run := func(mode bool) (CompiledResult, error) {
		m, err := newCompiledMode(n, mode)
		if err != nil {
			return CompiledResult{}, err
		}
		runtime.GC() // collect the previous mode's store before timing
		// At least 7 reps, and keep going until the measurement window spans
		// ~600ms (capped): transient noise — a GC cycle, a noisy neighbor on
		// a shared machine — lasts longer than a fast mode's 7 reps, and the
		// min only escapes a noise patch if some rep lands outside it.
		deadline := time.Now().Add(600 * time.Millisecond)
		for i := 0; i < 7 || (i < 40 && time.Now().Before(deadline)); i++ {
			if err := m.rep(); err != nil {
				return CompiledResult{}, err
			}
		}
		return m.finish(mode)
	}
	compiled, err = run(true)
	if err != nil {
		return compiled, interpreted, err
	}
	interpreted, err = run(false)
	return compiled, interpreted, err
}
