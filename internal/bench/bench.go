// Package bench holds the workload generators and experiment runners behind
// the repository's benchmark suite (root bench_test.go) and the experiment
// harness (cmd/wdlbench). Each Run* function builds a fresh deployment,
// exercises one aspect the paper demonstrates — fixpoint computation,
// stage pipelining, delegation, distribution, transports — and returns
// measurements.
package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/ast"
	"repro/internal/engine"
	"repro/internal/peer"
	"repro/internal/protocol"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/value"
)

// ChainEdges returns edges 0->1->2->…->n (n edges).
func ChainEdges(n int) [][2]int64 {
	out := make([][2]int64, n)
	for i := range out {
		out[i] = [2]int64{int64(i), int64(i + 1)}
	}
	return out
}

// BinaryTreeEdges returns parent->child edges of a complete binary tree
// with n nodes, a bushier fixpoint workload than a chain.
func BinaryTreeEdges(n int) [][2]int64 {
	var out [][2]int64
	for i := 1; i < n; i++ {
		out = append(out, [2]int64{int64((i - 1) / 2), int64(i)})
	}
	return out
}

// TCResult measures one transitive-closure fixpoint (experiment P1).
type TCResult struct {
	Edges      int
	Derived    int
	Iterations int
	Duration   time.Duration
}

// RunTC loads the given edges into a single peer's store and runs the
// classic transitive-closure program to fixpoint with the given engine
// options. This is the micro-benchmark for the naive vs semi-naive
// ablation.
func RunTC(edges [][2]int64, opts engine.Options) (TCResult, error) {
	db := store.New()
	edge, err := db.Declare(store.Schema{Name: "edge", Peer: "local", Kind: ast.Extensional, Cols: []string{"a", "b"}})
	if err != nil {
		return TCResult{}, err
	}
	if _, err := db.Declare(store.Schema{Name: "tc", Peer: "local", Kind: ast.Intensional, Cols: []string{"a", "b"}}); err != nil {
		return TCResult{}, err
	}
	for _, e := range edges {
		edge.Insert(value.Tuple{value.Int(e[0]), value.Int(e[1])})
	}
	e := engine.New("local", db, opts)
	prog, err := e.CompileProgram([]ast.Rule{
		mustRule("t1", `tc@local($x,$y) :- edge@local($x,$y);`),
		mustRule("t2", `tc@local($x,$z) :- tc@local($x,$y), edge@local($y,$z);`),
	})
	if err != nil {
		return TCResult{}, err
	}
	start := time.Now()
	res := e.RunStage(prog)
	return TCResult{
		Edges:      len(edges),
		Derived:    res.Derived,
		Iterations: res.Iterations,
		Duration:   time.Since(start),
	}, joinErrs(res.Errors)
}

// StageDecomposition measures the three steps of one peer stage
// (experiment P2): ingest of n remote facts, fixpoint over a join view, and
// emission of the derived facts to a remote sink.
type StageDecomposition struct {
	Facts    int
	Ingest   time.Duration
	Fixpoint time.Duration
	Emit     time.Duration
}

// RunStageDecomposition builds a two-peer network, queues nFacts at the
// subject peer, runs its stage and reports the per-step latencies.
func RunStageDecomposition(nFacts int) (StageDecomposition, error) {
	net := peer.NewNetwork()
	subject, err := net.NewPeer(peer.Config{Name: "subject"})
	if err != nil {
		return StageDecomposition{}, err
	}
	if _, err := net.NewPeer(peer.Config{Name: "sink"}); err != nil {
		return StageDecomposition{}, err
	}
	err = subject.LoadSource(`
		relation extensional in@subject(id, payload);
		relation intensional view@subject(id, payload);
		view@subject($i,$p) :- in@subject($i,$p);
		out@sink($i) :- view@subject($i,$p);
	`)
	if err != nil {
		return StageDecomposition{}, err
	}
	subject.RunStage() // initial compile stage
	for i := 0; i < nFacts; i++ {
		err := subject.Insert(ast.NewFact("in", "subject",
			value.Int(int64(i)), value.Str(fmt.Sprintf("payload-%d", i))))
		if err != nil {
			return StageDecomposition{}, err
		}
	}
	rep := subject.RunStage()
	return StageDecomposition{
		Facts:    nFacts,
		Ingest:   rep.Ingest,
		Fixpoint: rep.Fixpoint,
		Emit:     rep.Emit,
	}, joinErrs(rep.Errors)
}

// FanoutResult measures a delegation fan-out run (experiment P3).
type FanoutResult struct {
	Peers     int
	Rounds    int
	Stages    int
	Collected int
	Messages  uint64
	Duration  time.Duration
}

// RunDelegationFanout builds a coordinator plus n member peers, each
// holding factsPerPeer data facts. The coordinator's single rule
//
//	all@coord($x) :- members@coord($p), data@$p($x)
//
// delegates one residual rule to every member at run time. The run measures
// wall-clock time to quiescence.
func RunDelegationFanout(nPeers, factsPerPeer int) (FanoutResult, error) {
	net, err := fanoutNetwork(nPeers, factsPerPeer)
	if err != nil {
		return FanoutResult{}, err
	}
	coord := net.Peer("coord")
	if _, err := coord.AddRule(`all@coord($x) :- members@coord($p), data@$p($x);`); err != nil {
		return FanoutResult{}, err
	}
	start := time.Now()
	rounds, stages, err := net.RunToQuiescence(context.Background(), 0)
	if err != nil {
		return FanoutResult{}, err
	}
	return FanoutResult{
		Peers:     nPeers,
		Rounds:    rounds,
		Stages:    stages,
		Collected: len(coord.Query("all")),
		Messages:  net.Bus().Stats().MessagesSent,
		Duration:  time.Since(start),
	}, nil
}

// RunPreinstalledFanout is the baseline for P3: instead of delegating at
// run time, the residual rules are installed at the members up front (what
// a static distributed-datalog deployment would do).
func RunPreinstalledFanout(nPeers, factsPerPeer int) (FanoutResult, error) {
	net, err := fanoutNetwork(nPeers, factsPerPeer)
	if err != nil {
		return FanoutResult{}, err
	}
	coord := net.Peer("coord")
	for i := 0; i < nPeers; i++ {
		member := net.Peer(fmt.Sprintf("m%03d", i))
		rule := fmt.Sprintf(`all@coord($x) :- data@%s($x);`, member.Name())
		if _, err := member.AddRule(rule); err != nil {
			return FanoutResult{}, err
		}
	}
	start := time.Now()
	rounds, stages, err := net.RunToQuiescence(context.Background(), 0)
	if err != nil {
		return FanoutResult{}, err
	}
	return FanoutResult{
		Peers:     nPeers,
		Rounds:    rounds,
		Stages:    stages,
		Collected: len(coord.Query("all")),
		Messages:  net.Bus().Stats().MessagesSent,
		Duration:  time.Since(start),
	}, nil
}

func fanoutNetwork(nPeers, factsPerPeer int) (*peer.Network, error) {
	net := peer.NewNetwork()
	coord, err := net.NewPeer(peer.Config{Name: "coord"})
	if err != nil {
		return nil, err
	}
	if err := coord.DeclareRelation("members", ast.Extensional, "p"); err != nil {
		return nil, err
	}
	if err := coord.DeclareRelation("all", ast.Extensional, "x"); err != nil {
		return nil, err
	}
	for i := 0; i < nPeers; i++ {
		name := fmt.Sprintf("m%03d", i)
		m, err := net.NewPeer(peer.Config{Name: name})
		if err != nil {
			return nil, err
		}
		if err := m.DeclareRelation("data", ast.Extensional, "x"); err != nil {
			return nil, err
		}
		for j := 0; j < factsPerPeer; j++ {
			err := m.Insert(ast.NewFact("data", name, value.Str(fmt.Sprintf("%s-%d", name, j))))
			if err != nil {
				return nil, err
			}
		}
		if err := coord.Insert(ast.NewFact("members", "coord", value.Str(name))); err != nil {
			return nil, err
		}
	}
	return net, nil
}

// DistributionResult measures experiment P4: answering a cross-peer join
// with in-place distributed evaluation (delegation) versus shipping every
// base fact to a central peer first.
type DistributionResult struct {
	Peers        int
	Answers      int
	Messages     uint64
	FactsShipped uint64
	Duration     time.Duration
}

// factsShipped sums the facts received across all peers of the network —
// the data volume that crossed peer boundaries.
func factsShipped(net *peer.Network) uint64 {
	var sum uint64
	for _, p := range net.Peers() {
		sum += p.Stats().FactsIn
	}
	return sum
}

// RunDistributedJoin evaluates, at the querying peer,
//
//	match@q($x) :- wanted@q($p, $x), data@$p($x)
//
// where wanted names (peer, item) pairs: only matching items travel.
func RunDistributedJoin(nPeers, factsPerPeer, wantedPerPeer int) (DistributionResult, error) {
	net, q, err := distributionNetwork(nPeers, factsPerPeer, wantedPerPeer)
	if err != nil {
		return DistributionResult{}, err
	}
	if _, err := q.AddRule(`match@q($x) :- wanted@q($p,$x), data@$p($x);`); err != nil {
		return DistributionResult{}, err
	}
	start := time.Now()
	if _, _, err := net.RunToQuiescence(context.Background(), 0); err != nil {
		return DistributionResult{}, err
	}
	return DistributionResult{
		Peers:        nPeers,
		Answers:      len(q.Query("match")),
		Messages:     net.Bus().Stats().MessagesSent,
		FactsShipped: factsShipped(net),
		Duration:     time.Since(start),
	}, nil
}

// RunCentralizedJoin is the baseline: every member ships its whole data
// relation to the querying peer, which joins locally.
func RunCentralizedJoin(nPeers, factsPerPeer, wantedPerPeer int) (DistributionResult, error) {
	net, q, err := distributionNetwork(nPeers, factsPerPeer, wantedPerPeer)
	if err != nil {
		return DistributionResult{}, err
	}
	if err := q.DeclareRelation("central", ast.Extensional, "p", "x"); err != nil {
		return DistributionResult{}, err
	}
	for i := 0; i < nPeers; i++ {
		name := fmt.Sprintf("m%03d", i)
		m := net.Peer(name)
		rule := fmt.Sprintf(`central@q("%s", $x) :- data@%s($x);`, name, name)
		if _, err := m.AddRule(rule); err != nil {
			return DistributionResult{}, err
		}
	}
	if _, err := q.AddRule(`match@q($x) :- wanted@q($p,$x), central@q($p,$x);`); err != nil {
		return DistributionResult{}, err
	}
	start := time.Now()
	if _, _, err := net.RunToQuiescence(context.Background(), 0); err != nil {
		return DistributionResult{}, err
	}
	return DistributionResult{
		Peers:        nPeers,
		Answers:      len(q.Query("match")),
		Messages:     net.Bus().Stats().MessagesSent,
		FactsShipped: factsShipped(net),
		Duration:     time.Since(start),
	}, nil
}

func distributionNetwork(nPeers, factsPerPeer, wantedPerPeer int) (*peer.Network, *peer.Peer, error) {
	net := peer.NewNetwork()
	q, err := net.NewPeer(peer.Config{Name: "q"})
	if err != nil {
		return nil, nil, err
	}
	if err := q.DeclareRelation("wanted", ast.Extensional, "p", "x"); err != nil {
		return nil, nil, err
	}
	if err := q.DeclareRelation("match", ast.Extensional, "x"); err != nil {
		return nil, nil, err
	}
	for i := 0; i < nPeers; i++ {
		name := fmt.Sprintf("m%03d", i)
		m, err := net.NewPeer(peer.Config{Name: name})
		if err != nil {
			return nil, nil, err
		}
		if err := m.DeclareRelation("data", ast.Extensional, "x"); err != nil {
			return nil, nil, err
		}
		for j := 0; j < factsPerPeer; j++ {
			item := fmt.Sprintf("%s-%d", name, j)
			if err := m.Insert(ast.NewFact("data", name, value.Str(item))); err != nil {
				return nil, nil, err
			}
			if j < wantedPerPeer {
				if err := q.Insert(ast.NewFact("wanted", "q", value.Str(name), value.Str(item))); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	return net, q, nil
}

// TransportResult measures raw message throughput (experiment P5).
type TransportResult struct {
	Messages  int
	BytesEach int
	Duration  time.Duration
}

// RunBusThroughput pushes n fact messages of the given payload size through
// the in-memory bus.
func RunBusThroughput(n, payload int) (TransportResult, error) {
	bus := transport.NewBus()
	a := bus.Endpoint("a")
	b := bus.Endpoint("b")
	msg := makeMsg(payload)
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := a.Send(context.Background(), "b", msg); err != nil {
			return TransportResult{}, err
		}
	}
	got := 0
	for got < n {
		got += len(b.Drain())
	}
	return TransportResult{Messages: n, BytesEach: payload, Duration: time.Since(start)}, nil
}

// RunTCPThroughput pushes n fact messages of the given payload size through
// a localhost TCP link, including gob encode/decode.
func RunTCPThroughput(n, payload int) (TransportResult, error) {
	a, err := transport.ListenTCP(context.Background(), "a", "127.0.0.1:0", nil)
	if err != nil {
		return TransportResult{}, err
	}
	defer a.Close()
	b, err := transport.ListenTCP(context.Background(), "b", "127.0.0.1:0", nil)
	if err != nil {
		return TransportResult{}, err
	}
	defer b.Close()
	a.AddPeer("b", b.Addr())
	msg := makeMsg(payload)
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := a.Send(context.Background(), "b", msg); err != nil {
			return TransportResult{}, err
		}
	}
	got := 0
	deadline := time.Now().Add(30 * time.Second)
	for got < n {
		got += len(b.Drain())
		if time.Now().After(deadline) {
			return TransportResult{}, fmt.Errorf("bench: tcp throughput: received %d of %d", got, n)
		}
	}
	return TransportResult{Messages: n, BytesEach: payload, Duration: time.Since(start)}, nil
}

func makeMsg(payload int) protocol.FactsMsg {
	return protocol.FactsMsg{Ops: []protocol.FactDelta{{
		Fact: ast.NewFact("blobrel", "b", value.Blob(make([]byte, payload))),
	}}}
}

// JoinAblation measures a two-way join with or without hash indexes
// (ablation A1).
type JoinAblation struct {
	LeftSize, RightSize int
	Matches             int
	Duration            time.Duration
}

// RunJoinAblation builds left(n) ⋈ right(m) on the join key and evaluates
// a single rule over it.
func RunJoinAblation(left, right int, useIndex bool) (JoinAblation, error) {
	db := store.New()
	l, err := db.Declare(store.Schema{Name: "left", Peer: "local", Kind: ast.Extensional, Cols: []string{"k", "v"}})
	if err != nil {
		return JoinAblation{}, err
	}
	r, err := db.Declare(store.Schema{Name: "right", Peer: "local", Kind: ast.Extensional, Cols: []string{"k", "w"}})
	if err != nil {
		return JoinAblation{}, err
	}
	if _, err := db.Declare(store.Schema{Name: "out", Peer: "local", Kind: ast.Intensional, Cols: []string{"v", "w"}}); err != nil {
		return JoinAblation{}, err
	}
	for i := 0; i < left; i++ {
		l.Insert(value.Tuple{value.Int(int64(i)), value.Int(int64(i * 7))})
	}
	for i := 0; i < right; i++ {
		r.Insert(value.Tuple{value.Int(int64(i % left)), value.Int(int64(i * 13))})
	}
	opts := engine.DefaultOptions()
	opts.UseIndexes = useIndex
	e := engine.New("local", db, opts)
	prog, err := e.CompileProgram([]ast.Rule{
		mustRule("j", `out@local($v,$w) :- left@local($k,$v), right@local($k,$w);`),
	})
	if err != nil {
		return JoinAblation{}, err
	}
	start := time.Now()
	res := e.RunStage(prog)
	return JoinAblation{
		LeftSize:  left,
		RightSize: right,
		Matches:   res.Derived,
		Duration:  time.Since(start),
	}, joinErrs(res.Errors)
}

// WALAblation measures update-stage latency with and without durability.
type WALAblation struct {
	Facts    int
	WAL      bool
	Duration time.Duration
}

// RunWALAblation inserts n facts through a peer stage, optionally logging
// them to a WAL in dir.
func RunWALAblation(n int, dir string) (WALAblation, error) {
	net := peer.NewNetwork()
	cfg := peer.Config{Name: "p"}
	if dir != "" {
		w, err := store.OpenWAL(dir)
		if err != nil {
			return WALAblation{}, err
		}
		cfg.WAL = w
	}
	p, err := net.NewPeer(cfg)
	if err != nil {
		return WALAblation{}, err
	}
	if err := p.DeclareRelation("data", ast.Extensional, "id", "payload"); err != nil {
		return WALAblation{}, err
	}
	for i := 0; i < n; i++ {
		err := p.Insert(ast.NewFact("data", "p", value.Int(int64(i)), value.Str("payload")))
		if err != nil {
			return WALAblation{}, err
		}
	}
	start := time.Now()
	rep := p.RunStage()
	d := time.Since(start)
	if err := joinErrs(rep.Errors); err != nil {
		return WALAblation{}, err
	}
	return WALAblation{Facts: n, WAL: dir != "", Duration: d}, nil
}

// BatchResult measures the insert path of the v2 API: n facts staged either
// one Insert call at a time or as a single atomic Batch.
type BatchResult struct {
	Facts    int
	Stages   uint64
	Duration time.Duration
}

// RunInsertPath stages n facts at one live peer — per-fact when batched is
// false, as one Batch otherwise — and waits until the peer's stage loop has
// ingested them all. The peer runs its production loop (peer.Run), so the
// per-fact path pays what it pays in deployment: one lock acquisition and
// one scheduler wakeup per call, with each wakeup liable to trigger a
// fixpoint stage over whatever arrived. The batched path takes the lock
// once, wakes the loop once, and applies the facts through the store's
// grouped InsertMany.
func RunInsertPath(n int, batched bool) (BatchResult, error) {
	net := peer.NewNetwork()
	p, err := net.NewPeer(peer.Config{Name: "p"})
	if err != nil {
		return BatchResult{}, err
	}
	// The workload mirrors wdlbench's stage experiments: every ingested
	// fact feeds a derived view, so each fixpoint stage costs real work and
	// stage amplification on the per-fact path is visible.
	if err := p.LoadSource(`
		relation extensional data@p(id, payload);
		relation intensional view@p(id, payload);
		view@p($i,$s) :- data@p($i,$s);
	`); err != nil {
		return BatchResult{}, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = p.Run(ctx)
	}()

	start := time.Now()
	if batched {
		b := engine.NewBatch()
		for i := 0; i < n; i++ {
			b.Insert(ast.NewFact("data", "p", value.Int(int64(i)), value.Str("payload")))
		}
		if err := p.Apply(ctx, b); err != nil {
			return BatchResult{}, err
		}
	} else {
		for i := 0; i < n; i++ {
			err := p.Insert(ast.NewFact("data", "p", value.Int(int64(i)), value.Str("payload")))
			if err != nil {
				return BatchResult{}, err
			}
		}
	}
	rel := p.Store().Get("data", "p")
	deadline := time.Now().Add(60 * time.Second)
	for rel.Len() < n {
		if time.Now().After(deadline) {
			return BatchResult{}, fmt.Errorf("bench: insert path: %d of %d facts ingested", rel.Len(), n)
		}
		time.Sleep(50 * time.Microsecond)
	}
	d := time.Since(start)
	cancel()
	<-done
	return BatchResult{Facts: n, Stages: p.Stats().Stages, Duration: d}, nil
}

// RunRemoteInsertPath measures the wire half of batching: peer a stages n
// facts owned by peer b over a localhost TCP link — n framed gob messages
// on the per-fact path, one on the batched path — and waits for b's stage
// loop to ingest them.
func RunRemoteInsertPath(n int, batched bool) (BatchResult, error) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	epA, err := transport.ListenTCP(ctx, "a", "127.0.0.1:0", nil)
	if err != nil {
		return BatchResult{}, err
	}
	defer epA.Close()
	epB, err := transport.ListenTCP(ctx, "b", "127.0.0.1:0", nil)
	if err != nil {
		return BatchResult{}, err
	}
	defer epB.Close()
	epA.AddPeer("b", epB.Addr())
	a, err := peer.New(peer.Config{Name: "a"}, epA)
	if err != nil {
		return BatchResult{}, err
	}
	b, err := peer.New(peer.Config{Name: "b"}, epB)
	if err != nil {
		return BatchResult{}, err
	}
	if err := b.DeclareRelation("data", ast.Extensional, "id", "payload"); err != nil {
		return BatchResult{}, err
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = b.Run(ctx)
	}()

	start := time.Now()
	if batched {
		batch := engine.NewBatch()
		for i := 0; i < n; i++ {
			batch.Insert(ast.NewFact("data", "b", value.Int(int64(i)), value.Str("payload")))
		}
		if err := a.Apply(ctx, batch); err != nil {
			return BatchResult{}, err
		}
	} else {
		for i := 0; i < n; i++ {
			err := a.Insert(ast.NewFact("data", "b", value.Int(int64(i)), value.Str("payload")))
			if err != nil {
				return BatchResult{}, err
			}
		}
	}
	rel := b.Store().Get("data", "b")
	deadline := time.Now().Add(60 * time.Second)
	for rel.Len() < n {
		if time.Now().After(deadline) {
			return BatchResult{}, fmt.Errorf("bench: remote insert path: %d of %d facts ingested", rel.Len(), n)
		}
		time.Sleep(50 * time.Microsecond)
	}
	d := time.Since(start)
	cancel()
	<-done
	return BatchResult{Facts: n, Stages: b.Stats().Stages, Duration: d}, nil
}

// IncrementalResult measures experiment I1: the latency of single-fact
// updates against a large materialized view, with incremental maintenance
// versus naive per-stage recomputation.
type IncrementalResult struct {
	Facts     int
	Rounds    int
	Setup     time.Duration // initial materialization of the view
	PerUpdate time.Duration // mean latency of one insert+delete round
	ViewRows  int
	ViewFP    uint64 // content fingerprint, for cross-mode agreement checks
}

// RunIncrementalUpdate loads n base facts into a two-level join view,
// materializes it, then applies `rounds` single-fact update batches (one
// insert plus one delete each) measuring the stage latency per update. With
// incremental=false the peer recomputes the views from scratch every stage
// (the ablation baseline); both modes must converge to identical view
// contents — the caller compares ViewRows/ViewFP.
func RunIncrementalUpdate(n, rounds int, incremental bool) (IncrementalResult, error) {
	opts := engine.DefaultOptions()
	opts.Incremental = incremental
	net := peer.NewNetwork()
	p, err := net.NewPeer(peer.Config{Name: "p", Engine: &opts})
	if err != nil {
		return IncrementalResult{}, err
	}
	if err := p.LoadSource(`
		relation extensional data@p(id, grp);
		relation extensional meta@p(grp, label);
		relation intensional view@p(id, grp, label);
		relation intensional hot@p(id);
		view@p($i,$g,$l) :- data@p($i,$g), meta@p($g,$l);
		hot@p($i) :- view@p($i,$g,"hot");
	`); err != nil {
		return IncrementalResult{}, err
	}
	const groups = 100
	b := engine.NewBatch()
	for g := 0; g < groups; g++ {
		label := "cold"
		if g%2 == 0 {
			label = "hot"
		}
		b.Insert(ast.NewFact("meta", "p", value.Int(int64(g)), value.Str(label)))
	}
	for i := 0; i < n; i++ {
		b.Insert(ast.NewFact("data", "p", value.Int(int64(i)), value.Int(int64(i%groups))))
	}
	if err := p.Apply(context.Background(), b); err != nil {
		return IncrementalResult{}, err
	}
	start := time.Now()
	if _, _, err := net.RunToQuiescence(context.Background(), 0); err != nil {
		return IncrementalResult{}, err
	}
	// Warm-up round (unmeasured): the first deletion builds the head-bound
	// rederivation indexes, a one-time cost that belongs to setup.
	w := engine.NewBatch()
	w.Insert(ast.NewFact("data", "p", value.Int(-1), value.Int(0)))
	if err := p.Apply(context.Background(), w); err != nil {
		return IncrementalResult{}, err
	}
	if _, _, err := net.RunToQuiescence(context.Background(), 0); err != nil {
		return IncrementalResult{}, err
	}
	w = engine.NewBatch()
	w.Delete(ast.NewFact("data", "p", value.Int(-1), value.Int(0)))
	if err := p.Apply(context.Background(), w); err != nil {
		return IncrementalResult{}, err
	}
	if _, _, err := net.RunToQuiescence(context.Background(), 0); err != nil {
		return IncrementalResult{}, err
	}
	setup := time.Since(start)

	// Update rounds: retire one fact, admit one fact, settle the stage.
	start = time.Now()
	for r := 0; r < rounds; r++ {
		u := engine.NewBatch()
		u.Delete(ast.NewFact("data", "p", value.Int(int64(r)), value.Int(int64(r%groups))))
		u.Insert(ast.NewFact("data", "p", value.Int(int64(n+r)), value.Int(int64((n+r)%groups))))
		if err := p.Apply(context.Background(), u); err != nil {
			return IncrementalResult{}, err
		}
		if _, _, err := net.RunToQuiescence(context.Background(), 0); err != nil {
			return IncrementalResult{}, err
		}
	}
	total := time.Since(start)

	view := p.Store().Get("view", "p")
	hot := p.Store().Get("hot", "p")
	return IncrementalResult{
		Facts:     n,
		Rounds:    rounds,
		Setup:     setup,
		PerUpdate: total / time.Duration(rounds),
		ViewRows:  view.Len() + hot.Len(),
		ViewFP:    view.Fingerprint() ^ (hot.Fingerprint() * 31),
	}, nil
}

// RunIncrementalAgreement drives the same random insert/delete script
// through an incremental and a naive-recompute peer over a recursive
// (transitive closure) program and reports whether the materialized views
// agree after every batch — the property behind experiment I1's correctness
// column. It returns the number of steps checked.
func RunIncrementalAgreement(steps int, seed int64) (int, error) {
	build := func(incremental bool) (*peer.Network, *peer.Peer, error) {
		opts := engine.DefaultOptions()
		opts.Incremental = incremental
		net := peer.NewNetwork()
		p, err := net.NewPeer(peer.Config{Name: "p", Engine: &opts})
		if err != nil {
			return nil, nil, err
		}
		err = p.LoadSource(`
			relation extensional edge@p(a, b);
			relation intensional tc@p(a, b);
			tc@p($x,$y) :- edge@p($x,$y);
			tc@p($x,$z) :- tc@p($x,$y), edge@p($y,$z);
		`)
		if err != nil {
			return nil, nil, err
		}
		return net, p, nil
	}
	netI, pI, err := build(true)
	if err != nil {
		return 0, err
	}
	netN, pN, err := build(false)
	if err != nil {
		return 0, err
	}
	rnd := seed
	next := func(mod int64) int64 {
		rnd = rnd*6364136223846793005 + 1442695040888963407
		v := (rnd >> 33) % mod
		if v < 0 {
			v += mod
		}
		return v
	}
	live := map[[2]int64]bool{}
	for s := 0; s < steps; s++ {
		var f ast.Fact
		del := len(live) > 0 && next(3) == 0
		if del {
			// Deterministic victim: the smallest live edge, so a fixed seed
			// reproduces the exact script (map iteration order would not).
			var victim [2]int64
			first := true
			for e := range live {
				if first || e[0] < victim[0] || (e[0] == victim[0] && e[1] < victim[1]) {
					victim = e
					first = false
				}
			}
			f = ast.NewFact("edge", "p", value.Int(victim[0]), value.Int(victim[1]))
			delete(live, victim)
		} else {
			a, b := next(12), next(12)
			live[[2]int64{a, b}] = true
			f = ast.NewFact("edge", "p", value.Int(a), value.Int(b))
		}
		for _, p := range []*peer.Peer{pI, pN} {
			var err error
			if del {
				err = p.Delete(f)
			} else {
				err = p.Insert(f)
			}
			if err != nil {
				return s, err
			}
		}
		if _, _, err := netI.RunToQuiescence(context.Background(), 0); err != nil {
			return s, err
		}
		if _, _, err := netN.RunToQuiescence(context.Background(), 0); err != nil {
			return s, err
		}
		ti := pI.Store().Get("tc", "p")
		tn := pN.Store().Get("tc", "p")
		if ti.Len() != tn.Len() || ti.Fingerprint() != tn.Fingerprint() {
			return s, fmt.Errorf("bench: step %d: incremental tc (%d rows) != naive tc (%d rows)",
				s, ti.Len(), tn.Len())
		}
	}
	return steps, nil
}

func mustRule(id, src string) ast.Rule {
	r, err := parseRule(src)
	if err != nil {
		panic(fmt.Sprintf("bench: rule %s: %v", id, err))
	}
	r.ID = id
	return r
}

func joinErrs(errs []error) error {
	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("bench: %d stage errors, first: %w", len(errs), errs[0])
}
