package bench

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"repro/internal/ast"
	"repro/internal/peer"
	"repro/internal/transport"
	"repro/internal/value"
)

// The swarm workload (experiment P11) is the paper's Wepic social scenario
// at population scale: every peer is an author with a post relation and a
// feed, every follow edge is a remote push rule at the author —
//
//	feed@follower("author", $i) :- post@author($i);
//
// so each author's program incrementally maintains its posts into every
// follower's feed. Tens of thousands of in-process peers exchanging
// incrementally maintained views is feasible only with the three mechanisms
// this experiment exists to prove out: a swarm-wide value interner (a fact
// replicated to k feeds costs one tuple plus k map entries), a multiplexed
// transport (peers attach to one Mux instead of pairwise links), and the
// wake-queue scheduler (a quiescent swarm costs zero scans per round).

// SwarmSpec configures a swarm build.
type SwarmSpec struct {
	// Peers is the population size; every peer is an author.
	Peers int
	// Follows is how many distinct authors each peer follows.
	Follows int
	// Posts is how many posts each author is seeded with.
	Posts int
	// PostBytes pads every post id up to this size (0 = short ids): the
	// replicated payload whose storage the interner deduplicates.
	PostBytes int
	// Seed drives the follow graph and the update plan; equal specs build
	// byte-identical workloads, which the differential swarm test relies on.
	Seed int64
	// Intern, when true, shares one value.Interner across the whole swarm.
	Intern bool
	// Sequential selects the deterministic name-ordered scheduler (the
	// reference arm of the differential test) over the concurrent one.
	Sequential bool
}

// SwarmOp is one steady-state update: author posts a new item.
type SwarmOp struct {
	Author int
	Post   string
}

// Swarm is a built (not yet converged) swarm deployment.
type Swarm struct {
	Spec  SwarmSpec
	Net   *peer.Network
	Mux   *transport.Mux // nil in sequential mode (bus transport)
	Peers []*peer.Peer
	// Followers maps author index -> follower indices (the inverted follow
	// graph; rules live at the author).
	Followers [][]int
	// Edges is the total number of follow edges.
	Edges int
	// Interner is the shared intern table (nil when Spec.Intern is false).
	Interner *value.Interner
}

// SwarmPeerName returns the canonical name of swarm peer i.
func SwarmPeerName(i int) string { return fmt.Sprintf("p%05d", i) }

// BuildSwarm creates the peers, the follow graph, the per-edge push rules
// and the seed posts. Nothing has converged yet: run
// s.Net.RunToQuiescence to propagate the seeded posts into feeds.
func BuildSwarm(spec SwarmSpec) (*Swarm, error) {
	if spec.Peers <= 0 {
		return nil, fmt.Errorf("bench: swarm needs at least one peer")
	}
	if spec.Follows >= spec.Peers {
		return nil, fmt.Errorf("bench: %d follows per peer needs a population above %d", spec.Follows, spec.Follows)
	}
	s := &Swarm{Spec: spec, Followers: make([][]int, spec.Peers)}
	if spec.Intern {
		s.Interner = value.NewInterner()
	}
	if spec.Sequential {
		s.Net = peer.NewSequentialNetwork()
	} else {
		s.Net = peer.NewNetwork()
		s.Mux = transport.NewMux()
	}

	// Follow graph: rng-driven, inverted to author -> followers.
	rng := rand.New(rand.NewSource(spec.Seed))
	for i := 0; i < spec.Peers; i++ {
		seen := map[int]bool{i: true}
		for len(seen) < spec.Follows+1 {
			a := rng.Intn(spec.Peers)
			if seen[a] {
				continue
			}
			seen[a] = true
			s.Followers[a] = append(s.Followers[a], i)
			s.Edges++
		}
	}

	cfg := peer.Config{
		// SyncEmit keeps the swarm goroutine-free: outboxes flush inside
		// RunStage and under the scheduler instead of per-destination
		// flushers — 100k peers cannot afford 100k+ goroutines.
		SyncEmit: true,
		// Periodic anti-entropy timers are likewise a per-peer cost the
		// swarm doesn't need: the bus-style transports don't lose messages.
		ResyncInterval: -1,
		Interner:       s.Interner,
	}
	s.Peers = make([]*peer.Peer, spec.Peers)
	for i := 0; i < spec.Peers; i++ {
		cfg.Name = SwarmPeerName(i)
		var (
			p   *peer.Peer
			err error
		)
		if s.Mux != nil {
			p, err = peer.New(cfg, s.Mux.Endpoint(cfg.Name))
			if err == nil {
				s.Net.Add(p)
			}
		} else {
			p, err = s.Net.NewPeer(cfg)
		}
		if err != nil {
			return nil, fmt.Errorf("bench: swarm peer %s: %w", cfg.Name, err)
		}
		if err := p.DeclareRelation("post", ast.Extensional, "id"); err != nil {
			return nil, err
		}
		if err := p.DeclareRelation("feed", ast.Extensional, "author", "id"); err != nil {
			return nil, err
		}
		s.Peers[i] = p
	}
	for a, followers := range s.Followers {
		author := s.Peers[a]
		name := SwarmPeerName(a)
		for _, f := range followers {
			rule := fmt.Sprintf(`feed@%s("%s", $i) :- post@%s($i);`, SwarmPeerName(f), name, name)
			if _, err := author.AddRule(rule); err != nil {
				return nil, fmt.Errorf("bench: swarm rule %s->%s: %w", name, SwarmPeerName(f), err)
			}
		}
	}
	for a, author := range s.Peers {
		for k := 0; k < spec.Posts; k++ {
			post := ast.NewFact("post", SwarmPeerName(a), value.Str(spec.postID(fmt.Sprintf("t%d-%d", a, k))))
			if err := author.Insert(post); err != nil {
				return nil, fmt.Errorf("bench: swarm seed post: %w", err)
			}
		}
	}
	return s, nil
}

// postID pads an id to the spec's payload size.
func (spec SwarmSpec) postID(id string) string {
	if len(id) >= spec.PostBytes {
		return id
	}
	return id + strings.Repeat("x", spec.PostBytes-len(id))
}

// UpdatePlan derives rounds×perRound steady-state updates from the spec's
// seed. The plan depends only on the spec, so the concurrent and sequential
// arms of a differential run replay the identical workload.
func (spec SwarmSpec) UpdatePlan(rounds, perRound int) [][]SwarmOp {
	rng := rand.New(rand.NewSource(spec.Seed + 1))
	plan := make([][]SwarmOp, rounds)
	n := 0
	for r := range plan {
		ops := make([]SwarmOp, perRound)
		for i := range ops {
			ops[i] = SwarmOp{Author: rng.Intn(spec.Peers), Post: spec.postID(fmt.Sprintf("u%d", n))}
			n++
		}
		plan[r] = ops
	}
	return plan
}

// ApplyOps stages one round of updates (no convergence).
func (s *Swarm) ApplyOps(ops []SwarmOp) error {
	for _, op := range ops {
		f := ast.NewFact("post", SwarmPeerName(op.Author), value.Str(op.Post))
		if err := s.Peers[op.Author].Insert(f); err != nil {
			return fmt.Errorf("bench: swarm update: %w", err)
		}
	}
	return nil
}

// FeedSizes returns per-peer feed cardinality (diagnostics and tests).
func (s *Swarm) FeedSizes() []int {
	out := make([]int, len(s.Peers))
	for i, p := range s.Peers {
		if rel := p.Store().Get("feed", p.Name()); rel != nil {
			out[i] = rel.Len()
		}
	}
	return out
}

// Facts returns the total number of stored post and feed facts.
func (s *Swarm) Facts() int {
	total := 0
	for _, p := range s.Peers {
		for _, rel := range []string{"post", "feed"} {
			if r := p.Store().Get(rel, p.Name()); r != nil {
				total += r.Len()
			}
		}
	}
	return total
}

// SwarmResult measures one swarm run (experiment P11).
type SwarmResult struct {
	Peers int
	Edges int
	Facts int

	BuildDuration    time.Duration
	ConvergeDuration time.Duration
	UpdateDuration   time.Duration

	// UpdatesApplied counts steady-state post insertions; UpdatesPerSec is
	// their throughput including re-convergence of every affected feed.
	UpdatesApplied int
	UpdatesPerSec  float64

	// HeapBytes is the heap growth attributable to the built, converged
	// swarm (GC-settled delta against the pre-build baseline); BytesPerPeer
	// divides it over the population.
	HeapBytes    uint64
	BytesPerPeer float64

	// QuiescentScans is how many peers a RunToQuiescence on the already
	// quiescent swarm examined — 0 with the wake-queue scheduler (the
	// sequential reference scheduler reports its full population scan).
	QuiescentScans uint64

	// InternedStrings/InternedTuples size the shared intern table (zero
	// when interning is off).
	InternedStrings int
	InternedTuples  int
}

// RunSwarm builds a swarm, converges the seeded posts, drives the given
// steady-state update plan, and measures memory, throughput and scheduler
// cost.
func RunSwarm(spec SwarmSpec, updateRounds, updatesPerRound int) (SwarmResult, error) {
	ctx := context.Background()
	baseline := settledHeap()

	start := time.Now()
	s, err := BuildSwarm(spec)
	if err != nil {
		return SwarmResult{}, err
	}
	built := time.Now()
	if _, _, err := s.Net.RunToQuiescence(ctx, swarmRounds(spec)); err != nil {
		return SwarmResult{}, fmt.Errorf("bench: swarm initial convergence: %w", err)
	}
	converged := time.Now()

	res := SwarmResult{
		Peers:            spec.Peers,
		Edges:            s.Edges,
		BuildDuration:    built.Sub(start),
		ConvergeDuration: converged.Sub(built),
	}

	// Memory: settle the GC and attribute the growth to the swarm.
	heap := settledHeap()
	if heap > baseline {
		res.HeapBytes = heap - baseline
	}
	res.BytesPerPeer = float64(res.HeapBytes) / float64(spec.Peers)

	// Steady state: batches of updates, each driven to quiescence.
	plan := spec.UpdatePlan(updateRounds, updatesPerRound)
	updStart := time.Now()
	for _, ops := range plan {
		if err := s.ApplyOps(ops); err != nil {
			return SwarmResult{}, err
		}
		if _, _, err := s.Net.RunToQuiescence(ctx, swarmRounds(spec)); err != nil {
			return SwarmResult{}, fmt.Errorf("bench: swarm update convergence: %w", err)
		}
		res.UpdatesApplied += len(ops)
	}
	res.UpdateDuration = time.Since(updStart)
	if res.UpdateDuration > 0 && res.UpdatesApplied > 0 {
		res.UpdatesPerSec = float64(res.UpdatesApplied) / res.UpdateDuration.Seconds()
	}

	// Scheduler cost of a no-op pass over the quiescent swarm.
	scans0 := s.Net.SchedulerScans()
	if _, _, err := s.Net.RunToQuiescence(ctx, swarmRounds(spec)); err != nil {
		return SwarmResult{}, fmt.Errorf("bench: swarm quiescent pass: %w", err)
	}
	res.QuiescentScans = s.Net.SchedulerScans() - scans0

	res.Facts = s.Facts()
	if s.Interner != nil {
		st := s.Interner.Stats()
		res.InternedStrings = st.Strings
		res.InternedTuples = st.Tuples
	}
	return res, nil
}

// swarmRounds bounds RunToQuiescence generously: wide fan-out plus ack
// round-trips across a large population need more than the default budget.
func swarmRounds(spec SwarmSpec) int {
	r := 50 * (spec.Follows + 2)
	if r < 1000 {
		r = 1000
	}
	return r
}

// settledHeap runs the GC twice (finalizers, then the garbage they release)
// and reports live heap bytes.
func settledHeap() uint64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}
