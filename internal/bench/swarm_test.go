package bench

import (
	"context"
	"sort"
	"testing"

	"repro/internal/value"
)

// swarmViews converges a swarm over the given update plan and returns every
// peer's feed contents as sorted canonical keys.
func swarmViews(t *testing.T, spec SwarmSpec, plan [][]SwarmOp) [][]string {
	t.Helper()
	s, err := BuildSwarm(spec)
	if err != nil {
		t.Fatalf("BuildSwarm(%+v): %v", spec, err)
	}
	ctx := context.Background()
	if _, _, err := s.Net.RunToQuiescence(ctx, swarmRounds(spec)); err != nil {
		t.Fatalf("initial convergence: %v", err)
	}
	for r, ops := range plan {
		if err := s.ApplyOps(ops); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		if _, _, err := s.Net.RunToQuiescence(ctx, swarmRounds(spec)); err != nil {
			t.Fatalf("round %d convergence: %v", r, err)
		}
	}
	views := make([][]string, len(s.Peers))
	for i, p := range s.Peers {
		var keys []string
		for _, tup := range p.Query("feed") {
			keys = append(keys, tup.Key())
		}
		sort.Strings(keys)
		views[i] = keys
	}
	return views
}

// TestSwarmDifferential runs the same seeded 200-peer swarm workload through
// the concurrent wake-queue scheduler (interned, multiplexed transport) and
// through the deterministic sequential reference (plain bus, no interning),
// and requires every peer's final feed to be exactly equal. Any scheduler
// wake-up loss, mux misrouting, or interning aliasing bug shows up as a
// diverged view.
func TestSwarmDifferential(t *testing.T) {
	spec := SwarmSpec{Peers: 200, Follows: 3, Posts: 2, Seed: 42}
	plan := spec.UpdatePlan(3, 25)

	seq := spec
	seq.Sequential = true
	want := swarmViews(t, seq, plan)

	conc := spec
	conc.Intern = true
	got := swarmViews(t, conc, plan)

	if len(got) != len(want) {
		t.Fatalf("peer count: got %d, want %d", len(got), len(want))
	}
	mismatches := 0
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Errorf("peer %s: feed size %d, reference %d", SwarmPeerName(i), len(got[i]), len(want[i]))
			mismatches++
			continue
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Errorf("peer %s: feed[%d] = %q, reference %q", SwarmPeerName(i), j, got[i][j], want[i][j])
				mismatches++
				break
			}
		}
		if mismatches > 5 {
			t.Fatalf("too many diverged views")
		}
	}
}

// TestSwarmQuiescentScans pins the tentpole scheduler property: after a
// swarm converges, another RunToQuiescence examines zero peers.
func TestSwarmQuiescentScans(t *testing.T) {
	res, err := RunSwarm(SwarmSpec{Peers: 100, Follows: 3, Posts: 1, Seed: 7, Intern: true}, 1, 10)
	if err != nil {
		t.Fatalf("RunSwarm: %v", err)
	}
	if res.QuiescentScans != 0 {
		t.Fatalf("quiescent pass examined %d peers, want 0", res.QuiescentScans)
	}
	if res.Facts == 0 || res.Edges == 0 {
		t.Fatalf("degenerate swarm: %+v", res)
	}
}

// TestSwarmInterning checks the swarm actually shares storage: with
// interning on, the interner holds tuples, and replicated feed tuples are
// the same backing array across peers.
func TestSwarmInterning(t *testing.T) {
	spec := SwarmSpec{Peers: 50, Follows: 4, Posts: 2, Seed: 9, Intern: true}
	s, err := BuildSwarm(spec)
	if err != nil {
		t.Fatalf("BuildSwarm: %v", err)
	}
	if _, _, err := s.Net.RunToQuiescence(context.Background(), swarmRounds(spec)); err != nil {
		t.Fatalf("convergence: %v", err)
	}
	st := s.Interner.Stats()
	if st.Tuples == 0 || st.Strings == 0 {
		t.Fatalf("interner unused: %+v", st)
	}
	// Find one author with >= 2 followers and compare the identity of a
	// replicated feed tuple across two followers.
	for a, followers := range s.Followers {
		if len(followers) < 2 {
			continue
		}
		key := ""
		for _, tup := range s.Peers[followers[0]].Query("feed") {
			if tup[0].S == SwarmPeerName(a) {
				key = tup.Key()
				break
			}
		}
		if key == "" {
			continue
		}
		t0 := feedTupleByKey(s, followers[0], key)
		t1 := feedTupleByKey(s, followers[1], key)
		if t0 == nil || t1 == nil {
			t.Fatalf("replicated tuple %q missing from a follower", key)
		}
		if &t0[0] != &t1[0] {
			t.Fatalf("replicated feed tuple is not shared: %p vs %p", &t0[0], &t1[0])
		}
		return
	}
	t.Fatalf("no author with two followers in seed graph")
}

func feedTupleByKey(s *Swarm, peerIdx int, key string) value.Tuple {
	rel := s.Peers[peerIdx].Store().Get("feed", SwarmPeerName(peerIdx))
	if rel == nil {
		return nil
	}
	var found value.Tuple
	rel.Iterate(func(t value.Tuple) bool {
		if t.Key() == key {
			found = t
			return false
		}
		return true
	})
	return found
}
