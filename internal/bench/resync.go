package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/ast"
	"repro/internal/peer"
	"repro/internal/protocol"
	"repro/internal/store"
	"repro/internal/value"
)

// ResyncResult measures experiment P8: recovery of a restarted volatile
// receiver via anti-entropy resync, and the steady-state cost of the digest
// protocol versus naively re-sending the full view every period.
type ResyncResult struct {
	Ops          int
	FixpointRows int  // rows of the fault-free fixpoint view
	Recovered    bool // receiver contents equal the fixpoint after restart
	RowsAfter    int  // rows at the receiver when the run ended
	RecoveryTime time.Duration

	// Resync work actually performed.
	Requests  uint64 // resync requests the receiver sent
	Snapshots uint64 // repair snapshots the sender served

	// Steady-state anti-entropy cost per period on an *unchanged* view:
	// what one digest advert costs on the wire versus what naively
	// re-sending the whole maintained view would cost.
	DigestBytes   int
	SnapshotBytes int
}

// resyncBenchInterval paces the anti-entropy adverts fast enough for a
// bench run.
const resyncBenchInterval = 25 * time.Millisecond

// RunReceiverRestart drives a seeded random insert/delete stream into a
// maintained remote view, converges, kills and restarts the volatile
// receiver, and — with no further sender-side change — reports whether the
// receiver recovered the fault-free fixpoint. With resync disabled
// (the pre-anti-entropy behavior) the run must end diverged: nothing ever
// re-teaches the restarted receiver.
func RunReceiverRestart(ops int, resync bool) (ResyncResult, error) {
	interval := resyncBenchInterval
	if !resync {
		interval = -1
	}
	n := peer.NewNetwork()
	mkPeer := func(name string) (*peer.Peer, error) {
		p, err := peer.New(peer.Config{
			Name:             name,
			OutboxAckTimeout: 10 * time.Millisecond,
			OutboxBackoff:    2 * time.Millisecond,
			ResyncInterval:   interval,
		}, n.Bus().Endpoint(name))
		if err != nil {
			return nil, err
		}
		n.Add(p)
		return p, nil
	}
	a, err := mkPeer("a")
	if err != nil {
		return ResyncResult{}, err
	}
	defer a.Close()
	if err := a.LoadSource(`
		relation extensional src@a(x);
		view@b($x) :- src@a($x);
	`); err != nil {
		return ResyncResult{}, err
	}
	b, err := mkPeer("b")
	if err != nil {
		return ResyncResult{}, err
	}
	if err := b.DeclareRelation("view", ast.Intensional, "x"); err != nil {
		return ResyncResult{}, err
	}

	driveAll := func(ps ...*peer.Peer) {
		for _, p := range ps {
			if p.HasWork() {
				p.RunStage()
			}
		}
	}
	until := func(ps []*peer.Peer, deadline time.Duration, done func() bool) bool {
		end := time.Now().Add(deadline)
		for time.Now().Before(end) {
			driveAll(ps...)
			if done() {
				return true
			}
			time.Sleep(500 * time.Microsecond)
		}
		return false
	}

	// Seeded random update stream; the final present-set is the fixpoint.
	rng := rand.New(rand.NewSource(20130819))
	present := map[int64]bool{}
	for i := 0; i < ops; i++ {
		k := rng.Int63n(32)
		var err error
		if present[k] {
			err = a.Delete(ast.NewFact("src", "a", value.Int(k)))
		} else {
			err = a.Insert(ast.NewFact("src", "a", value.Int(k)))
		}
		if err != nil {
			return ResyncResult{}, err
		}
		present[k] = !present[k]
		driveAll(a, b)
	}
	var want []value.Tuple
	for k, in := range present {
		if in {
			want = append(want, value.Tuple{value.Int(k)})
		}
	}
	value.SortTuples(want)
	res := ResyncResult{Ops: ops, FixpointRows: len(want)}

	// The fault-free fixpoint, as an O(1)-comparable content digest: the
	// same incrementally maintained fold the receiver's view relation keeps
	// (store.Relation.Digest), so every convergence poll is a constant-time
	// compare instead of a sort.
	var wantDig store.Digest
	for _, t := range want {
		wantDig.Add(t.Key())
	}
	atFixpoint := func(p *peer.Peer) bool {
		return p.Store().Get("view", "b").Digest() == wantDig
	}

	if !until([]*peer.Peer{a, b}, 30*time.Second, func() bool { return atFixpoint(b) }) {
		return res, fmt.Errorf("p8: pre-crash convergence failed: %v", b.Query("view"))
	}
	// Drain every in-flight ack so the crash leaves no retransmission that
	// would repair the stream as a side effect — the scenario under test is
	// the idle sender.
	if !until([]*peer.Peer{a, b}, 10*time.Second, func() bool {
		total, _ := a.OutboxPending()
		return total == 0
	}) {
		return res, fmt.Errorf("p8: sender outbox never drained")
	}

	// Steady-state anti-entropy cost on the (now unchanged) view: one
	// digest advert versus one naive full re-send of the same view.
	snap := protocol.SnapshotMsg{}
	for _, t := range want {
		snap.Ops = append(snap.Ops, protocol.FactDelta{Maint: true, Fact: ast.Fact{Rel: "view", Peer: "b", Args: t}})
	}
	advert := protocol.DigestMsg{
		Epoch:   1,
		AsOfSeq: uint64(ops),
		Rels:    map[string]protocol.RelDigest{"view@b": {Hash: wantDig.Hash, Count: wantDig.Count}},
	}
	db, err := protocol.EncodePayload(advert)
	if err != nil {
		return res, err
	}
	sb, err := protocol.EncodePayload(snap)
	if err != nil {
		return res, err
	}
	res.DigestBytes, res.SnapshotBytes = len(db), len(sb)

	// Kill the receiver; bring up a fresh volatile incarnation. The sender
	// changes nothing from here on.
	if err := b.Close(); err != nil {
		return res, err
	}
	b2, err := mkPeer("b")
	if err != nil {
		return res, err
	}
	defer b2.Close()
	if err := b2.DeclareRelation("view", ast.Intensional, "x"); err != nil {
		return res, err
	}

	start := time.Now()
	if resync {
		res.Recovered = until([]*peer.Peer{a, b2}, 30*time.Second, func() bool { return atFixpoint(b2) })
		res.RecoveryTime = time.Since(start)
	} else {
		// Generous grace period: prove that no mechanism kicks in.
		until([]*peer.Peer{a, b2}, 400*time.Millisecond, func() bool { return false })
		res.Recovered = atFixpoint(b2)
	}
	res.RowsAfter = len(b2.Query("view"))
	res.Requests = b2.Stats().ResyncRequested
	res.Snapshots = a.Stats().ResyncSnapshots
	return res, nil
}
