package bench

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/ast"
	"repro/internal/engine"
	"repro/internal/peer"
	"repro/internal/protocol"
	"repro/internal/store"
	"repro/internal/value"
)

// ResyncResult measures experiment P8: recovery of a restarted volatile
// receiver via anti-entropy resync, and the steady-state cost of the digest
// protocol versus naively re-sending the full view every period.
type ResyncResult struct {
	Ops          int
	FixpointRows int  // rows of the fault-free fixpoint view
	Recovered    bool // receiver contents equal the fixpoint after restart
	RowsAfter    int  // rows at the receiver when the run ended
	RecoveryTime time.Duration

	// Resync work actually performed.
	Requests  uint64 // resync requests the receiver sent
	Snapshots uint64 // repair snapshots the sender served

	// Steady-state anti-entropy cost per period on an *unchanged* view:
	// what one digest advert costs on the wire versus what naively
	// re-sending the whole maintained view would cost.
	DigestBytes   int
	SnapshotBytes int
}

// resyncBenchInterval paces the anti-entropy adverts fast enough for a
// bench run.
const resyncBenchInterval = 25 * time.Millisecond

// RunReceiverRestart drives a seeded random insert/delete stream into a
// maintained remote view, converges, kills and restarts the volatile
// receiver, and — with no further sender-side change — reports whether the
// receiver recovered the fault-free fixpoint. With resync disabled
// (the pre-anti-entropy behavior) the run must end diverged: nothing ever
// re-teaches the restarted receiver.
func RunReceiverRestart(ops int, resync bool) (ResyncResult, error) {
	interval := resyncBenchInterval
	if !resync {
		interval = -1
	}
	n := peer.NewNetwork()
	mkPeer := func(name string) (*peer.Peer, error) {
		p, err := peer.New(peer.Config{
			Name:             name,
			OutboxAckTimeout: 10 * time.Millisecond,
			OutboxBackoff:    2 * time.Millisecond,
			ResyncInterval:   interval,
		}, n.Bus().Endpoint(name))
		if err != nil {
			return nil, err
		}
		n.Add(p)
		return p, nil
	}
	a, err := mkPeer("a")
	if err != nil {
		return ResyncResult{}, err
	}
	defer a.Close()
	if err := a.LoadSource(`
		relation extensional src@a(x);
		view@b($x) :- src@a($x);
	`); err != nil {
		return ResyncResult{}, err
	}
	b, err := mkPeer("b")
	if err != nil {
		return ResyncResult{}, err
	}
	if err := b.DeclareRelation("view", ast.Intensional, "x"); err != nil {
		return ResyncResult{}, err
	}

	driveAll := func(ps ...*peer.Peer) {
		for _, p := range ps {
			if p.HasWork() {
				p.RunStage()
			}
		}
	}
	until := func(ps []*peer.Peer, deadline time.Duration, done func() bool) bool {
		end := time.Now().Add(deadline)
		for time.Now().Before(end) {
			driveAll(ps...)
			if done() {
				return true
			}
			time.Sleep(500 * time.Microsecond)
		}
		return false
	}

	// Seeded random update stream; the final present-set is the fixpoint.
	rng := rand.New(rand.NewSource(20130819))
	present := map[int64]bool{}
	for i := 0; i < ops; i++ {
		k := rng.Int63n(32)
		var err error
		if present[k] {
			err = a.Delete(ast.NewFact("src", "a", value.Int(k)))
		} else {
			err = a.Insert(ast.NewFact("src", "a", value.Int(k)))
		}
		if err != nil {
			return ResyncResult{}, err
		}
		present[k] = !present[k]
		driveAll(a, b)
	}
	var want []value.Tuple
	for k, in := range present {
		if in {
			want = append(want, value.Tuple{value.Int(k)})
		}
	}
	value.SortTuples(want)
	res := ResyncResult{Ops: ops, FixpointRows: len(want)}

	// The fault-free fixpoint, as an O(1)-comparable content digest: the
	// same incrementally maintained fold the receiver's view relation keeps
	// (store.Relation.Digest), so every convergence poll is a constant-time
	// compare instead of a sort.
	var wantDig store.Digest
	for _, t := range want {
		wantDig.Add(t.Key())
	}
	atFixpoint := func(p *peer.Peer) bool {
		return p.Store().Get("view", "b").Digest() == wantDig
	}

	if !until([]*peer.Peer{a, b}, 30*time.Second, func() bool { return atFixpoint(b) }) {
		return res, fmt.Errorf("p8: pre-crash convergence failed: %v", b.Query("view"))
	}
	// Drain every in-flight ack so the crash leaves no retransmission that
	// would repair the stream as a side effect — the scenario under test is
	// the idle sender.
	if !until([]*peer.Peer{a, b}, 10*time.Second, func() bool {
		total, _ := a.OutboxPending()
		return total == 0
	}) {
		return res, fmt.Errorf("p8: sender outbox never drained")
	}

	// Steady-state anti-entropy cost on the (now unchanged) view: one
	// digest advert versus one naive full re-send of the same view.
	snap := protocol.SnapshotMsg{}
	for _, t := range want {
		snap.Ops = append(snap.Ops, protocol.FactDelta{Maint: true, Fact: ast.Fact{Rel: "view", Peer: "b", Args: t}})
	}
	advert := protocol.DigestMsg{
		Epoch:   1,
		AsOfSeq: uint64(ops),
		Rels:    map[string]protocol.RelDigest{"view@b": {Hash: wantDig.Hash, Count: wantDig.Count}},
	}
	db, err := protocol.EncodePayload(advert)
	if err != nil {
		return res, err
	}
	sb, err := protocol.EncodePayload(snap)
	if err != nil {
		return res, err
	}
	res.DigestBytes, res.SnapshotBytes = len(db), len(sb)

	// Kill the receiver; bring up a fresh volatile incarnation. The sender
	// changes nothing from here on.
	if err := b.Close(); err != nil {
		return res, err
	}
	b2, err := mkPeer("b")
	if err != nil {
		return res, err
	}
	defer b2.Close()
	if err := b2.DeclareRelation("view", ast.Intensional, "x"); err != nil {
		return res, err
	}

	start := time.Now()
	if resync {
		res.Recovered = until([]*peer.Peer{a, b2}, 30*time.Second, func() bool { return atFixpoint(b2) })
		res.RecoveryTime = time.Since(start)
	} else {
		// Generous grace period: prove that no mechanism kicks in.
		until([]*peer.Peer{a, b2}, 400*time.Millisecond, func() bool { return false })
		res.Recovered = atFixpoint(b2)
	}
	res.RowsAfter = len(b2.Query("view"))
	res.Requests = b2.Stats().ResyncRequested
	res.Snapshots = a.Stats().ResyncSnapshots
	return res, nil
}

// LargeViewResult measures the large-view tier of experiment P8: a sender
// restart against a receiver whose huge maintained view is almost correct,
// repaired either through the Merkle-ranged bisection dialogue or (the
// ablation) by re-shipping the whole view as a snapshot.
type LargeViewResult struct {
	ViewSize   int
	Divergence int // keys the restarted sender lost + keys it gained
	Recovered  bool
	Recovery   time.Duration

	// Sender-side repair traffic actually served.
	Snapshots       uint64
	SnapshotBytes   uint64
	RangedRepairs   uint64
	RangedBytes     uint64 // RangeRepairMsg bytes
	DigestBytes     uint64 // RangeDigestMsg reply bytes
	RangesRequested uint64 // receiver-side: leaf ranges whose repair was asked

	// RepairBytes is what the repair cost on the wire: bisection digests
	// plus ranged repairs when the dialogue ran, the snapshot when not.
	RepairBytes uint64

	// FullViewBytes is the measured encoded size of one full-view snapshot
	// of the final fixpoint (chunked exactly as the repair path chunks it)
	// — the counterfactual cost a snapshot repair pays at this tier. The
	// ablation arm's served SnapshotBytes is at least this (it re-ships the
	// view at least once); measuring it directly lets the largest tier
	// assert its ratio without driving a multi-minute snapshot arm.
	FullViewBytes uint64
}

// RunLargeViewRepair loads a maintained view of viewSize facts, converges,
// then restarts the *sender* as a fresh incarnation that lost `divergence`
// of its facts and gained `divergence` new ones. The receiver's ledger is
// intact and almost correct — the scenario the ranged dialogue exists for.
// With ranged=false the dialogue is disabled (RangedRepairFloor < 0) and
// the same divergence is repaired by a full snapshot.
func RunLargeViewRepair(viewSize, divergence int, ranged bool) (LargeViewResult, error) {
	res := LargeViewResult{ViewSize: viewSize, Divergence: 2 * divergence}
	floor := 0
	if !ranged {
		floor = -1
	}
	n := peer.NewNetwork()
	mkPeer := func(name string) (*peer.Peer, error) {
		p, err := peer.New(peer.Config{
			Name:              name,
			OutboxAckTimeout:  20 * time.Millisecond,
			OutboxBackoff:     5 * time.Millisecond,
			ResyncInterval:    resyncBenchInterval,
			RangedRepairFloor: floor,
		}, n.Bus().Endpoint(name))
		if err != nil {
			return nil, err
		}
		n.Add(p)
		return p, nil
	}
	program := `
		relation extensional src@a(x);
		view@b($x) :- src@a($x);
	`
	a, err := mkPeer("a")
	if err != nil {
		return res, err
	}
	defer a.Close()
	if err := a.LoadSource(program); err != nil {
		return res, err
	}
	b, err := mkPeer("b")
	if err != nil {
		return res, err
	}
	defer b.Close()
	if err := b.DeclareRelation("view", ast.Intensional, "x"); err != nil {
		return res, err
	}

	until := func(ps []*peer.Peer, deadline time.Duration, done func() bool) bool {
		end := time.Now().Add(deadline)
		for time.Now().Before(end) {
			worked := false
			for _, p := range ps {
				if p.HasWork() {
					p.RunStage()
					worked = true
				}
			}
			if done() {
				return true
			}
			if !worked {
				time.Sleep(500 * time.Microsecond)
			}
		}
		return false
	}
	apply := func(p *peer.Peer, keys []int64) error {
		batch := engine.NewBatch()
		for _, k := range keys {
			batch.Insert(ast.NewFact("src", "a", value.Int(k)))
		}
		return p.Apply(context.Background(), batch)
	}
	digestOf := func(keys []int64) store.Digest {
		var d store.Digest
		for _, k := range keys {
			d.Add(value.Tuple{value.Int(k)}.Key())
		}
		return d
	}

	// Initial load: keys 0..viewSize-1, converged and fully acked (so the
	// crash leaves no retransmission that would mask the repair path).
	initial := make([]int64, viewSize)
	for i := range initial {
		initial[i] = int64(i)
	}
	wantInit := digestOf(initial)
	if err := apply(a, initial); err != nil {
		return res, err
	}
	viewDigest := func(p *peer.Peer) store.Digest { return p.Store().Get("view", "b").Digest() }
	if !until([]*peer.Peer{a, b}, 120*time.Second, func() bool { return viewDigest(b) == wantInit }) {
		return res, fmt.Errorf("p8 large-view: initial convergence failed at %d facts", viewSize)
	}
	if !until([]*peer.Peer{a, b}, 30*time.Second, func() bool {
		total, _ := a.OutboxPending()
		return total == 0
	}) {
		return res, fmt.Errorf("p8 large-view: sender outbox never drained")
	}

	// Sender crash: the fresh incarnation never knew `divergence` evenly
	// spaced keys and holds `divergence` new ones — a small δ in a huge,
	// otherwise intact receiver ledger.
	if err := a.Close(); err != nil {
		return res, err
	}
	step := viewSize / divergence
	lost := map[int64]bool{}
	for i := 0; i < divergence; i++ {
		lost[int64(i*step)] = true
	}
	var final []int64
	for _, k := range initial {
		if !lost[k] {
			final = append(final, k)
		}
	}
	for i := 0; i < divergence; i++ {
		final = append(final, int64(viewSize+i))
	}
	wantFinal := digestOf(final)

	a2, err := mkPeer("a")
	if err != nil {
		return res, err
	}
	defer a2.Close()
	if err := a2.LoadSource(program); err != nil {
		return res, err
	}
	if err := apply(a2, final); err != nil {
		return res, err
	}
	start := time.Now()
	res.Recovered = until([]*peer.Peer{a2, b}, 120*time.Second, func() bool { return viewDigest(b) == wantFinal })
	res.Recovery = time.Since(start)

	s := a2.Stats()
	res.Snapshots = s.ResyncSnapshots
	res.SnapshotBytes = s.ResyncSnapshotBytes
	res.RangedRepairs = s.ResyncRangedRepairs
	res.RangedBytes = s.ResyncRangedRepairBytes
	res.DigestBytes = s.ResyncRangeDigestBytes
	res.RangesRequested = b.Stats().ResyncRangesRequested
	if ranged {
		res.RepairBytes = res.RangedBytes + res.DigestBytes
	} else {
		res.RepairBytes = res.SnapshotBytes
	}

	// Counterfactual: the wire cost of re-shipping the final view as one
	// chunked snapshot, measured by encoding the actual messages.
	const chunkOps = 4096
	for off := 0; off < len(final); off += chunkOps {
		hi := off + chunkOps
		if hi > len(final) {
			hi = len(final)
		}
		msg := protocol.SnapshotMsg{More: hi < len(final)}
		for _, k := range final[off:hi] {
			msg.Ops = append(msg.Ops, protocol.FactDelta{
				Maint: true,
				Fact:  ast.Fact{Rel: "view", Peer: "b", Args: value.Tuple{value.Int(k)}},
			})
		}
		enc, err := protocol.EncodePayload(msg)
		if err != nil {
			return res, err
		}
		res.FullViewBytes += uint64(len(enc))
	}
	return res, nil
}
