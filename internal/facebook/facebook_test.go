package facebook

import (
	"errors"
	"testing"
)

func seeded(t *testing.T) *Service {
	t.Helper()
	s := NewService()
	for _, u := range [][2]string{{"emilien", "Emilien"}, {"jules", "Jules"}, {"julia", "Julia"}} {
		if err := s.AddUser(u[0], u[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.CreateGroup("g", "Group"); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestUsersAndFriends(t *testing.T) {
	s := seeded(t)
	if err := s.AddUser("emilien", "Dup"); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate user: %v", err)
	}
	if err := s.Befriend("emilien", "jules"); err != nil {
		t.Fatal(err)
	}
	if err := s.Befriend("emilien", "ghost"); !errors.Is(err, ErrNoSuchUser) {
		t.Errorf("befriending ghost: %v", err)
	}
	ef, err := s.Friends("emilien")
	if err != nil || len(ef) != 1 || ef[0].Name != "Jules" {
		t.Errorf("emilien friends = %v (%v)", ef, err)
	}
	jf, err := s.Friends("jules")
	if err != nil || len(jf) != 1 || jf[0].ID != "emilien" {
		t.Errorf("friendship not symmetric: %v (%v)", jf, err)
	}
	if name, err := s.UserName("julia"); err != nil || name != "Julia" {
		t.Errorf("UserName = %q (%v)", name, err)
	}
	if _, err := s.UserName("ghost"); !errors.Is(err, ErrNoSuchUser) {
		t.Errorf("UserName(ghost): %v", err)
	}
}

func TestGroupsAndMembers(t *testing.T) {
	s := seeded(t)
	if err := s.CreateGroup("g", "Again"); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate group: %v", err)
	}
	if err := s.JoinGroup("emilien", "g"); err != nil {
		t.Fatal(err)
	}
	if err := s.JoinGroup("ghost", "g"); !errors.Is(err, ErrNoSuchUser) {
		t.Errorf("ghost join: %v", err)
	}
	if err := s.JoinGroup("jules", "nope"); !errors.Is(err, ErrNoSuchGroup) {
		t.Errorf("join missing group: %v", err)
	}
	members, err := s.Members("g")
	if err != nil || len(members) != 1 || members[0] != "emilien" {
		t.Errorf("members = %v (%v)", members, err)
	}
}

func TestPhotosIdempotentPost(t *testing.T) {
	s := seeded(t)
	id1, err := s.PostPhoto("g", "emilien", "sea.jpg", []byte{1})
	if err != nil {
		t.Fatal(err)
	}
	id2, err := s.PostPhoto("g", "emilien", "sea.jpg", []byte{1})
	if err != nil || id2 != id1 {
		t.Errorf("re-post: id %d vs %d (%v)", id1, id2, err)
	}
	id3, err := s.PostPhoto("g", "jules", "sea.jpg", []byte{2})
	if err != nil || id3 == id1 {
		t.Errorf("same name different owner must be a new photo")
	}
	photos, err := s.Photos("g")
	if err != nil || len(photos) != 2 {
		t.Fatalf("photos = %v (%v)", photos, err)
	}
	if photos[0].URL == "" || photos[0].Group != "g" {
		t.Errorf("photo metadata = %+v", photos[0])
	}
}

func TestPhotoDataIsolated(t *testing.T) {
	s := seeded(t)
	data := []byte{1, 2, 3}
	if _, err := s.PostPhoto("g", "emilien", "x.jpg", data); err != nil {
		t.Fatal(err)
	}
	data[0] = 99
	photos, _ := s.Photos("g")
	if photos[0].Data[0] != 1 {
		t.Error("service aliases caller's data slice")
	}
}

func TestCommentsAndTags(t *testing.T) {
	s := seeded(t)
	id, err := s.PostPhoto("g", "emilien", "x.jpg", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddComment("g", id, "jules", "nice"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddComment("g", id, "jules", "nice"); err != nil {
		t.Fatal(err) // idempotent
	}
	if err := s.AddComment("g", 999, "jules", "nope"); !errors.Is(err, ErrNoSuchPhoto) {
		t.Errorf("comment on missing photo: %v", err)
	}
	comments, err := s.Comments("g")
	if err != nil || len(comments) != 1 {
		t.Fatalf("comments = %v (%v)", comments, err)
	}
	if err := s.AddTag("g", id, "Serge"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTag("g", id, "Serge"); err != nil {
		t.Fatal(err) // idempotent
	}
	tags, err := s.Tags("g")
	if err != nil || len(tags) != 1 || tags[0].Person != "Serge" {
		t.Fatalf("tags = %v (%v)", tags, err)
	}
}

func TestMissingGroupErrors(t *testing.T) {
	s := seeded(t)
	if _, err := s.Photos("nope"); !errors.Is(err, ErrNoSuchGroup) {
		t.Errorf("Photos: %v", err)
	}
	if _, err := s.Comments("nope"); !errors.Is(err, ErrNoSuchGroup) {
		t.Errorf("Comments: %v", err)
	}
	if _, err := s.Tags("nope"); !errors.Is(err, ErrNoSuchGroup) {
		t.Errorf("Tags: %v", err)
	}
	if _, err := s.PostPhoto("nope", "emilien", "x", nil); !errors.Is(err, ErrNoSuchGroup) {
		t.Errorf("PostPhoto: %v", err)
	}
}
