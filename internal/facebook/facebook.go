// Package facebook simulates the external social-network service that the
// paper's Facebook wrapper talks to. The real demonstration used the actual
// Facebook API; this in-process substitute preserves the relevant behaviour:
// a stateful service, outside the WebdamLog data model, holding users,
// friendships, groups and group photos with comments and tags, reachable
// only through an imperative API. The wrappers package adapts it to
// WebdamLog relations exactly as the paper's wrapper exports
// friends@ÉmilienFB and pictures@ÉmilienFB.
package facebook

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Common service errors.
var (
	ErrNoSuchUser  = errors.New("facebook: no such user")
	ErrNoSuchGroup = errors.New("facebook: no such group")
	ErrNoSuchPhoto = errors.New("facebook: no such photo")
	ErrDuplicate   = errors.New("facebook: duplicate")
)

// User is a registered account.
type User struct {
	ID   string
	Name string
}

// Photo is a picture posted to a group.
type Photo struct {
	ID    int64
	Group string
	Owner string
	Name  string
	URL   string
	Data  []byte
}

// Comment is a comment on a photo.
type Comment struct {
	PhotoID int64
	Author  string
	Text    string
}

// Tag marks a person appearing in a photo.
type Tag struct {
	PhotoID int64
	Person  string
}

type user struct {
	User
	friends map[string]bool
}

type group struct {
	id       string
	name     string
	members  map[string]bool
	photos   map[int64]*Photo
	comments []Comment
	tags     []Tag
	// byOwnerName deduplicates uploads of the same (owner, name) pair so a
	// wrapper re-pushing relation contents is idempotent.
	byOwnerName map[string]int64
}

// Service is the simulated social network. All methods are safe for
// concurrent use.
type Service struct {
	mu       sync.RWMutex
	users    map[string]*user
	groups   map[string]*group
	photoSeq int64
}

// NewService creates an empty service.
func NewService() *Service {
	return &Service{
		users:  make(map[string]*user),
		groups: make(map[string]*group),
	}
}

// AddUser registers an account.
func (s *Service) AddUser(id, name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.users[id]; dup {
		return fmt.Errorf("%w: user %q", ErrDuplicate, id)
	}
	s.users[id] = &user{User: User{ID: id, Name: name}, friends: make(map[string]bool)}
	return nil
}

// UserName returns the display name of a user.
func (s *Service) UserName(id string) (string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	u, ok := s.users[id]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrNoSuchUser, id)
	}
	return u.Name, nil
}

// Befriend records a symmetric friendship between a and b.
func (s *Service) Befriend(a, b string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ua, ok := s.users[a]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchUser, a)
	}
	ub, ok := s.users[b]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchUser, b)
	}
	ua.friends[b] = true
	ub.friends[a] = true
	return nil
}

// Friends returns the friends of a user, sorted by id.
func (s *Service) Friends(id string) ([]User, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	u, ok := s.users[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchUser, id)
	}
	ids := make([]string, 0, len(u.friends))
	for f := range u.friends {
		ids = append(ids, f)
	}
	sort.Strings(ids)
	out := make([]User, 0, len(ids))
	for _, f := range ids {
		out = append(out, s.users[f].User)
	}
	return out, nil
}

// CreateGroup creates a group (the demo's "SigmodFB" group).
func (s *Service) CreateGroup(id, name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.groups[id]; dup {
		return fmt.Errorf("%w: group %q", ErrDuplicate, id)
	}
	s.groups[id] = &group{
		id: id, name: name,
		members:     make(map[string]bool),
		photos:      make(map[int64]*Photo),
		byOwnerName: make(map[string]int64),
	}
	return nil
}

// JoinGroup adds a user to a group.
func (s *Service) JoinGroup(userID, groupID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.users[userID]; !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchUser, userID)
	}
	g, ok := s.groups[groupID]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchGroup, groupID)
	}
	g.members[userID] = true
	return nil
}

// Members returns a group's member ids, sorted.
func (s *Service) Members(groupID string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	g, ok := s.groups[groupID]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchGroup, groupID)
	}
	out := make([]string, 0, len(g.members))
	for m := range g.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out, nil
}

// PostPhoto publishes a photo to a group. Re-posting the same (owner, name)
// pair returns the existing photo id, making wrapper pushes idempotent.
func (s *Service) PostPhoto(groupID, owner, name string, data []byte) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.groups[groupID]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoSuchGroup, groupID)
	}
	key := owner + "\x00" + name
	if id, dup := g.byOwnerName[key]; dup {
		return id, nil
	}
	s.photoSeq++
	id := s.photoSeq
	dataCopy := make([]byte, len(data))
	copy(dataCopy, data)
	g.photos[id] = &Photo{
		ID:    id,
		Group: groupID,
		Owner: owner,
		Name:  name,
		URL:   fmt.Sprintf("https://fb.example/%s/photos/%d", groupID, id),
		Data:  dataCopy,
	}
	g.byOwnerName[key] = id
	return id, nil
}

// Photos returns a group's photos sorted by id.
func (s *Service) Photos(groupID string) ([]Photo, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	g, ok := s.groups[groupID]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchGroup, groupID)
	}
	out := make([]Photo, 0, len(g.photos))
	for _, p := range g.photos {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// AddComment attaches a comment to a photo.
func (s *Service) AddComment(groupID string, photoID int64, author, text string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.groups[groupID]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchGroup, groupID)
	}
	if _, ok := g.photos[photoID]; !ok {
		return fmt.Errorf("%w: %d in %q", ErrNoSuchPhoto, photoID, groupID)
	}
	for _, c := range g.comments {
		if c.PhotoID == photoID && c.Author == author && c.Text == text {
			return nil // idempotent
		}
	}
	g.comments = append(g.comments, Comment{PhotoID: photoID, Author: author, Text: text})
	return nil
}

// Comments returns all comments in a group, in insertion order.
func (s *Service) Comments(groupID string) ([]Comment, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	g, ok := s.groups[groupID]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchGroup, groupID)
	}
	out := make([]Comment, len(g.comments))
	copy(out, g.comments)
	return out, nil
}

// AddTag marks a person as appearing in a photo.
func (s *Service) AddTag(groupID string, photoID int64, person string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.groups[groupID]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchGroup, groupID)
	}
	if _, ok := g.photos[photoID]; !ok {
		return fmt.Errorf("%w: %d in %q", ErrNoSuchPhoto, photoID, groupID)
	}
	for _, tg := range g.tags {
		if tg.PhotoID == photoID && tg.Person == person {
			return nil // idempotent
		}
	}
	g.tags = append(g.tags, Tag{PhotoID: photoID, Person: person})
	return nil
}

// Tags returns all tags in a group, in insertion order.
func (s *Service) Tags(groupID string) ([]Tag, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	g, ok := s.groups[groupID]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchGroup, groupID)
	}
	out := make([]Tag, len(g.tags))
	copy(out, g.tags)
	return out, nil
}
