package webdamlog_test

import (
	"context"
	"os"
	"testing"

	webdamlog "repro"
)

func TestFacadeQuickstart(t *testing.T) {
	sys := webdamlog.NewSystem()
	err := sys.LoadSource(`
		peer emilien;
		relation extensional pictures@emilien(id, name, owner, data);
		pictures@emilien(1, "sea.jpg", "emilien", 0xCAFE);

		peer jules;
		relation extensional selectedAttendee@jules(attendee);
		relation intensional attendeePictures@jules(id, name, owner, data);
		selectedAttendee@jules("emilien");
		attendeePictures@jules($id,$name,$owner,$data) :-
			selectedAttendee@jules($attendee),
			pictures@$attendee($id,$name,$owner,$data);
	`)
	if err != nil {
		t.Fatal(err)
	}
	sys.MustRun()
	got := sys.Peer("jules").Query("attendeePictures")
	if len(got) != 1 || got[0][1].StringVal() != "sea.jpg" {
		t.Fatalf("attendeePictures = %v", got)
	}
}

func TestFacadeParsers(t *testing.T) {
	r, err := webdamlog.ParseRule(`a@p($x) :- b@p($x);`)
	if err != nil || len(r.Body) != 1 {
		t.Fatalf("ParseRule: %v %v", r, err)
	}
	f, err := webdamlog.ParseFact(`a@p("v", 1);`)
	if err != nil || f.Rel != "a" {
		t.Fatalf("ParseFact: %v %v", f, err)
	}
	prog, err := webdamlog.Parse(`peer p; a@p(1);`)
	if err != nil || len(prog.Facts) != 1 {
		t.Fatalf("Parse: %v %v", prog, err)
	}
	if !webdamlog.DefaultEngineOptions().SemiNaive {
		t.Error("default engine options must be semi-naive")
	}
}

func TestFacadeValuesAndFacts(t *testing.T) {
	f := webdamlog.NewFact("r", "p", webdamlog.Str("s"), webdamlog.Int(1),
		webdamlog.Float(1.5), webdamlog.Bool(true), webdamlog.Blob([]byte{1}))
	if len(f.Args) != 5 {
		t.Fatalf("fact = %v", f)
	}
	pol := webdamlog.NewTrustPolicy("hub")
	if !pol.Trusted("hub") || pol.Trusted("x") {
		t.Error("trust policy broken")
	}
}

// TestSamplePrograms runs every .wdl file under examples/programs to
// quiescence and checks the documented outcome.
func TestSamplePrograms(t *testing.T) {
	cases := []struct {
		file    string
		peer    string
		rel     string
		wantLen int
	}{
		{"examples/programs/album.wdl", "jules", "attendeePictures", 3},
		{"examples/programs/album.wdl", "jules", "fiveStar", 2},
		{"examples/programs/reachability.wdl", "q", "reach", 5},
	}
	for _, c := range cases {
		t.Run(c.file+"/"+c.rel, func(t *testing.T) {
			src, err := os.ReadFile(c.file)
			if err != nil {
				t.Fatal(err)
			}
			sys := webdamlog.NewSystem()
			if err := sys.LoadSource(string(src)); err != nil {
				t.Fatal(err)
			}
			if _, _, err := sys.Run(context.Background(), 0); err != nil {
				t.Fatal(err)
			}
			got := sys.Peer(c.peer).Query(c.rel)
			if len(got) != c.wantLen {
				t.Errorf("%s@%s = %v, want %d tuples", c.rel, c.peer, got, c.wantLen)
			}
		})
	}
}
