// Package webdamlog is the public facade of this reproduction of
// "Rule-Based Application Development using Webdamlog" (SIGMOD 2013): a
// datalog-style language and distributed runtime in which autonomous peers
// exchange both facts and rules (delegations).
//
// # Quick start (v2 API)
//
// Load a multi-peer program, run it to quiescence under a context, and
// query the derived view:
//
//	sys := webdamlog.NewSystem()
//	err := sys.LoadSource(`
//	    peer emilien;
//	    relation extensional pictures@emilien(id, name, owner, data);
//	    pictures@emilien(1, "sea.jpg", "emilien", 0xCAFE);
//
//	    peer jules;
//	    relation extensional selectedAttendee@jules(attendee);
//	    relation intensional attendeePictures@jules(id, name, owner, data);
//	    selectedAttendee@jules("emilien");
//	    attendeePictures@jules($id,$name,$owner,$data) :-
//	        selectedAttendee@jules($attendee),
//	        pictures@$attendee($id,$name,$owner,$data);
//	`)
//	// …
//	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
//	defer cancel()
//	if _, _, err := sys.Run(ctx, 0); err != nil { … }
//	for _, t := range sys.Peer("jules").Query("attendeePictures") {
//	    fmt.Println(t)
//	}
//
// # Atomic batches
//
// N calls to Insert take the peer lock N times, wake the scheduler N times
// and, over TCP, ship N messages. A Batch applies as one unit — one store
// transaction and one fixpoint stage locally, one wire message per remote
// destination:
//
//	b := webdamlog.NewBatch()
//	for _, pic := range pics {
//	    b.Insert(webdamlog.NewFact("pictures", "emilien", pic...))
//	}
//	err := sys.Peer("emilien").Apply(ctx, b)
//
// # Streaming subscriptions
//
// Subscribe streams a relation's changes as they commit — the primitive a
// live UI or serving frontend builds on instead of polling Query:
//
//	deltas, err := sys.Peer("jules").Subscribe(ctx, "attendeePictures")
//	for d := range deltas {
//	    // d.Delete says whether d.Tuple appeared or vanished.
//	}
//
// # Typed errors
//
// Failures wrap the sentinels in errors.go (ErrUnknownRelation, ErrArity,
// ErrPolicyDenied, ErrNoQuiescence, ErrWAL, …); branch on them with
// errors.Is and recover details (e.g. QuiescenceError.Rounds) with
// errors.As.
//
// # Incremental view maintenance
//
// Derived (intensional) relations are materialized and maintained
// incrementally: each stage feeds its base-fact deltas through the
// semi-naive fixpoint machinery, and deletions run an over-delete/rederive
// pass, so retracting one support never kills a tuple with an alternative
// derivation and single-fact updates cost the size of the change rather
// than the size of the database. Remote derivations ship as maintained
// insert/retract deltas with per-sender support tracked at the receiver.
// EngineOptions.Incremental turns the machinery off (the recompute-per-
// stage ablation, measured by `wdlbench -exp i1`); programs with negation
// through a view, provenance-traced peers and wrapper-hook peers fall back
// to recomputation automatically. See docs/architecture.md.
//
// The deeper layers are available directly: internal/engine (fixpoint
// evaluation and delegation splitting), internal/peer (the stage loop and
// transports), internal/acl (delegation control), internal/wepic (the demo
// application), internal/wrappers with internal/facebook and internal/email
// (the simulated external services).
package webdamlog

import (
	"repro/internal/acl"
	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/parser"
	"repro/internal/peer"
	"repro/internal/value"
)

// System is an in-process WebdamLog deployment; see internal/core.
type System = core.System

// Peer is one WebdamLog peer; see internal/peer.
type Peer = peer.Peer

// Network is a deterministic in-process peer network.
type Network = peer.Network

// PeerConfig configures a peer created directly on a Network.
type PeerConfig = peer.Config

// Rule, Fact and Program are the WebdamLog AST types.
type (
	Rule    = ast.Rule
	Fact    = ast.Fact
	Program = ast.Program
)

// Value and Tuple are the data model types.
type (
	Value = value.Value
	Tuple = value.Tuple
)

// Batch accumulates inserts and deletes that apply atomically; see
// Peer.Apply and System.Apply.
type Batch = engine.Batch

// Update is one staged fact operation inside a Batch.
type Update = engine.FactOp

// Delta is one streamed change from Peer.Subscribe.
type Delta = peer.Delta

// QuiescenceError is the concrete error behind ErrNoQuiescence; errors.As
// recovers the exhausted round budget.
type QuiescenceError = peer.QuiescenceError

// EngineOptions configures evaluation (semi-naive vs naive, indexes).
type EngineOptions = engine.Options

// PeerOption customizes peer creation in a System.
type PeerOption = core.PeerOption

// Re-exported peer options.
var (
	WithPolicy        = core.WithPolicy
	WithEngineOptions = core.WithEngineOptions
	WithWAL           = core.WithWAL
	WithProvenance    = core.WithProvenance
)

// NewSystem creates an empty in-process WebdamLog system.
func NewSystem() *System { return core.NewSystem() }

// NewNetwork creates a bare peer network (lower-level than System).
func NewNetwork() *Network { return peer.NewNetwork() }

// NewBatch creates an empty atomic batch.
func NewBatch() *Batch { return engine.NewBatch() }

// Parse parses a WebdamLog program.
func Parse(src string) (*Program, error) { return parser.Parse(src) }

// ParseRule parses a single rule.
func ParseRule(src string) (Rule, error) { return parser.ParseRule(src) }

// ParseFact parses a single ground fact.
func ParseFact(src string) (Fact, error) { return parser.ParseFact(src) }

// DefaultEngineOptions returns the production evaluation configuration.
func DefaultEngineOptions() EngineOptions { return engine.DefaultOptions() }

// NewTrustPolicy builds the demo's delegation policy: delegations from the
// listed peers are accepted, everything else waits for explicit approval.
func NewTrustPolicy(trusted ...string) *acl.TrustPolicy {
	return acl.NewTrustPolicy(trusted...)
}

// Value constructors.
var (
	Str   = value.Str
	Int   = value.Int
	Float = value.Float
	Bool  = value.Bool
	Blob  = value.Blob
)

// NewFact builds a ground fact rel@peer(args...).
func NewFact(rel, peerName string, args ...Value) Fact {
	return ast.NewFact(rel, peerName, args...)
}
