// Command wdlvet is this repository's custom static checker: a
// multichecker over the analyzers in internal/vet (mutexio, errdefswrap,
// metricsinit), driven without golang.org/x/tools.
//
//	wdlvet [-list] [packages]
//
// Packages default to ./... — the whole module. The exit status is non-zero
// when any analyzer reports a finding. CI runs it as a required step; see
// internal/vet for what each analyzer enforces and why.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/vet"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()
	if *list {
		for _, a := range vet.All() {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := vet.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wdlvet:", err)
		os.Exit(2)
	}
	findings, err := vet.RunAnalyzers(pkgs, vet.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "wdlvet:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
