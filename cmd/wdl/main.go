// Command wdl runs WebdamLog programs.
//
// Two modes:
//
//	wdl run [-rounds N] [-dump rel@peer,...] [-explain] file.wdl
//	    Load a multi-peer program file into an in-process system, run all
//	    peers to quiescence and print the resulting relations. -explain
//	    additionally prints, per peer, the join plan the engine chose for
//	    each rule (atom order, live cardinalities, selectivity estimates).
//
//	wdl serve -name jules -listen :7001 [-peer emilien=host:7000]...
//	          [-program file.wdl] [-trust sigmod,...] [-wal dir]
//	    Run a single peer over TCP (the distributed deployment of the
//	    paper: laptops plus the Webdam cloud), with an interactive REPL on
//	    stdin: insert/delete facts, add rules, inspect relations, and
//	    accept or reject pending delegations.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/acl"
	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/peer"
	"repro/internal/store"
	"repro/internal/transport"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(os.Args[2:])
	case "check":
		err = cmdCheck(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "wdl: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "wdl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  wdl run [-rounds N] [-dump rel@peer,...] [-explain] file.wdl
  wdl check [-json] [-strict] file.wdl...
  wdl serve -name NAME -listen ADDR [-peer NAME=ADDR]... [-program FILE] [-trust NAMES] [-wal DIR]`)
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	rounds := fs.Int("rounds", 1000, "maximum scheduler rounds before giving up")
	dump := fs.String("dump", "", "comma-separated rel@peer list to print (default: everything)")
	explain := fs.Bool("explain", false, "print each peer's join plans (evaluation order, cardinalities, selectivity estimates)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("run: expected exactly one program file")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	sys := core.NewSystem()
	if err := sys.LoadSource(string(src)); err != nil {
		if line, col, ok := parser.Position(err); ok {
			return fmt.Errorf("%s:%d:%d: %s", fs.Arg(0), line, col, parseMsg(err))
		}
		return err
	}
	// ^C cancels the run mid-way instead of killing the process outright.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	r, stages, err := sys.Run(ctx, *rounds)
	if err != nil {
		return err
	}
	fmt.Printf("quiesced after %d rounds, %d stages\n", r, stages)

	want := map[string]bool{}
	if *dump != "" {
		for _, id := range strings.Split(*dump, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	for _, p := range sys.Peers() {
		for _, rel := range p.Store().RelationsOf(p.Name()) {
			id := rel.Schema().ID()
			if len(want) > 0 && !want[id] {
				continue
			}
			if rel.Len() == 0 && len(want) == 0 {
				continue
			}
			fmt.Printf("\n%s (%s, %d tuples):\n", id, rel.Kind(), rel.Len())
			for _, t := range rel.Tuples() {
				fmt.Printf("  %s\n", t)
			}
		}
	}
	if *explain {
		// Explained after the run, so the estimates reflect the live
		// cardinalities the planner actually sees at stage time.
		for _, p := range sys.Peers() {
			fmt.Printf("\n-- join plans at %s --\n%s", p.Name(), p.Explain())
		}
	}
	return nil
}

type peerList map[string]string

func (p peerList) String() string {
	var parts []string
	for k, v := range p {
		parts = append(parts, k+"="+v)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func (p peerList) Set(v string) error {
	name, addr, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("expected NAME=ADDR, got %q", v)
	}
	p[name] = addr
	return nil
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	name := fs.String("name", "", "peer name (required)")
	listen := fs.String("listen", ":7070", "TCP listen address")
	program := fs.String("program", "", "WebdamLog program file to load at startup")
	trust := fs.String("trust", "", "comma-separated peers whose delegations are auto-accepted")
	walDir := fs.String("wal", "", "directory for durable state (write-ahead log + snapshots)")
	peers := peerList{}
	fs.Var(peers, "peer", "remote peer address as NAME=ADDR (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("serve: -name is required")
	}
	// ^C (or SIGTERM) cancels ctx: the REPL unblocks and returns, every
	// active watch subscription is torn down with it, and the peer shuts
	// down cleanly — even while a watch stream is mid-delivery.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ep, err := transport.ListenTCP(ctx, *name, *listen, peers)
	if err != nil {
		return err
	}
	cfg := peer.Config{Name: *name}
	if *trust != "" {
		cfg.Policy = acl.NewTrustPolicy(strings.Split(*trust, ",")...)
	}
	if *walDir != "" {
		w, err := store.OpenWAL(*walDir)
		if err != nil {
			return err
		}
		cfg.WAL = w
	}
	p, err := peer.New(cfg, ep)
	if err != nil {
		return err
	}
	if *program != "" {
		src, err := os.ReadFile(*program)
		if err != nil {
			return err
		}
		if err := p.LoadSource(string(src)); err != nil {
			return err
		}
	}
	fmt.Printf("peer %s listening on %s\n", *name, ep.Addr())

	go func() {
		if err := p.Run(ctx); err != nil && ctx.Err() == nil {
			fmt.Fprintln(os.Stderr, "peer loop:", err)
		}
	}()
	repl(ctx, p, os.Stdin, os.Stdout)
	stop()
	return p.Close()
}

// repl is the interactive console of a served peer. It returns when the
// input reaches EOF, on "quit", or when ctx is cancelled (^C) — including
// while blocked waiting for input with watch subscriptions streaming.
func repl(ctx context.Context, p *peer.Peer, in io.Reader, out io.Writer) {
	fmt.Fprintln(out, `commands: +FACT | -FACT | rule RULE | drop ID | dump [REL] | watch REL | unwatch REL | rules | pending | accept N | reject N | stats | quit`)
	watches := map[string]context.CancelFunc{}
	defer func() {
		for _, cancel := range watches {
			cancel()
		}
	}()
	// The scanner blocks in Read with no way to interrupt it, so it feeds
	// a channel and the loop selects against ctx: cancellation unblocks
	// the REPL immediately, leaving the reader goroutine to die with the
	// process (stdin) or at the next line (a test's pipe).
	lines := make(chan string)
	go func() {
		defer close(lines)
		sc := bufio.NewScanner(in)
		for sc.Scan() {
			select {
			case lines <- sc.Text():
			case <-ctx.Done():
				return
			}
		}
	}()
	for {
		fmt.Fprint(out, "wdl> ")
		var raw string
		select {
		case <-ctx.Done():
			fmt.Fprintln(out)
			return
		case l, ok := <-lines:
			if !ok {
				return
			}
			raw = l
		}
		line := strings.TrimSpace(raw)
		if line == "" {
			continue
		}
		var err error
		switch {
		case line == "quit" || line == "exit":
			return
		case strings.HasPrefix(line, "+"):
			err = p.InsertString(strings.TrimPrefix(line, "+"))
		case strings.HasPrefix(line, "-"):
			err = p.DeleteString(strings.TrimPrefix(line, "-"))
		case strings.HasPrefix(line, "rule "):
			var id string
			id, err = p.AddRule(strings.TrimPrefix(line, "rule "))
			if err == nil {
				fmt.Fprintln(out, "added rule", id)
			}
		case strings.HasPrefix(line, "drop "):
			err = p.RemoveRule(strings.TrimSpace(strings.TrimPrefix(line, "drop ")))
		case line == "rules":
			fmt.Fprint(out, p.ProgramText())
		case line == "dump":
			for _, rel := range p.Store().RelationsOf(p.Name()) {
				fmt.Fprintf(out, "%s (%s, %d tuples)\n", rel.Schema().ID(), rel.Kind(), rel.Len())
				for _, t := range rel.Tuples() {
					fmt.Fprintf(out, "  %s\n", t)
				}
			}
		case strings.HasPrefix(line, "dump "):
			relName := strings.TrimSpace(strings.TrimPrefix(line, "dump "))
			for _, t := range p.Query(relName) {
				fmt.Fprintf(out, "  %s\n", t)
			}
		case strings.HasPrefix(line, "watch "):
			relName := strings.TrimSpace(strings.TrimPrefix(line, "watch "))
			if _, dup := watches[relName]; dup {
				fmt.Fprintln(out, "already watching", relName)
				break
			}
			wctx, cancel := context.WithCancel(ctx)
			var deltas <-chan peer.Delta
			deltas, err = p.Subscribe(wctx, relName)
			if err != nil {
				cancel()
				break
			}
			watches[relName] = cancel
			go func(rel string, ch <-chan peer.Delta) {
				for d := range ch {
					fmt.Fprintf(out, "\n[%s] %s\nwdl> ", rel, d)
				}
			}(relName, deltas)
		case strings.HasPrefix(line, "unwatch "):
			relName := strings.TrimSpace(strings.TrimPrefix(line, "unwatch "))
			if cancel, ok := watches[relName]; ok {
				cancel()
				delete(watches, relName)
			} else {
				fmt.Fprintln(out, "not watching", relName)
			}
		case line == "pending":
			for _, pd := range p.Controller().Pending() {
				fmt.Fprintln(out, pd.String())
			}
		case strings.HasPrefix(line, "accept "):
			var id int
			id, err = strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, "accept ")))
			if err == nil {
				err = p.Controller().Accept(id)
			}
		case strings.HasPrefix(line, "reject "):
			var id int
			id, err = strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, "reject ")))
			if err == nil {
				err = p.Controller().Reject(id)
			}
		case line == "stats":
			s := p.Stats()
			fmt.Fprintf(out, "stages=%d skipped=%d derived=%d facts_in=%d facts_out=%d delegations_in=%d delegations_out=%d withdrawals=%d resync_requested=%d resync_snapshots=%d\n",
				s.Stages, s.StagesSkipped, s.Derived, s.FactsIn, s.FactsOut, s.DelegationsIn, s.DelegationsOut, s.Withdrawals,
				s.ResyncRequested, s.ResyncSnapshots)
		default:
			fmt.Fprintln(out, "unknown command; try: +FACT -FACT rule drop dump rules pending accept reject stats quit")
		}
		if err != nil {
			fmt.Fprintln(out, "error:", err)
		}
	}
}
