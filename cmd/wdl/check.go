package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
	"repro/internal/lexer"
	"repro/internal/parser"
)

// jsonDiagnostic is the -json wire form of one finding. Parse errors are
// reported in the same shape with an empty code.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line,omitempty"`
	Col      int    `json:"col,omitempty"`
	Severity string `json:"severity"`
	Code     string `json:"code,omitempty"`
	Peer     string `json:"peer,omitempty"`
	Message  string `json:"message"`
}

// render prints a diagnostic the way compilers do: file:line:col prefixed,
// severity, bracketed code.
func (d jsonDiagnostic) render() string {
	loc := d.File
	if d.Line > 0 {
		loc = fmt.Sprintf("%s:%d:%d", d.File, d.Line, d.Col)
	}
	if d.Code != "" {
		return fmt.Sprintf("%s: %s: [%s] %s", loc, d.Severity, d.Code, d.Message)
	}
	return fmt.Sprintf("%s: %s: %s", loc, d.Severity, d.Message)
}

// parseMsg extracts the bare message of a parse or lex error (their Error()
// strings embed the position, which the file:line:col prefix already shows).
func parseMsg(err error) string {
	var pe *parser.Error
	if errors.As(err, &pe) {
		return pe.Msg
	}
	var le *lexer.Error
	if errors.As(err, &le) {
		return le.Msg
	}
	return err.Error()
}

// cmdCheck implements `wdl check [-json] [-strict] file.wdl...`: parse each
// program and run the static analyzer over it. The exit status is non-zero
// when any file fails to parse or has error-severity diagnostics; -strict
// also fails on warnings.
func cmdCheck(args []string) error {
	return runCheck(args, os.Stdout)
}

func runCheck(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array instead of text")
	strict := fs.Bool("strict", false, "treat warnings as errors for the exit status")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("check: expected at least one program file")
	}
	var all []jsonDiagnostic
	errCount, warnCount := 0, 0
	for _, file := range fs.Args() {
		src, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		prog, err := parser.Parse(string(src))
		if err != nil {
			line, col, _ := parser.Position(err)
			all = append(all, jsonDiagnostic{
				File: file, Line: line, Col: col,
				Severity: analysis.Error.String(), Message: parseMsg(err),
			})
			errCount++
			continue
		}
		for _, d := range analysis.Check(prog, analysis.Options{}) {
			all = append(all, jsonDiagnostic{
				File: file, Line: d.Pos.Line, Col: d.Pos.Col,
				Severity: d.Severity.String(), Code: d.Code, Peer: d.Peer, Message: d.Message,
			})
			if d.Severity == analysis.Error {
				errCount++
			} else {
				warnCount++
			}
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if all == nil {
			all = []jsonDiagnostic{}
		}
		if err := enc.Encode(all); err != nil {
			return err
		}
	} else {
		for _, d := range all {
			fmt.Fprintln(out, d.render())
		}
	}
	if errCount > 0 || (*strict && warnCount > 0) {
		return fmt.Errorf("check: %d error(s), %d warning(s)", errCount, warnCount)
	}
	return nil
}
