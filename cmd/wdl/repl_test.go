package main

import (
	"bytes"
	"context"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ast"
	"repro/internal/peer"
)

// syncBuffer serializes the repl's writes against the test's reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestReplCtxCancelWithActiveWatch is the regression test for the serve
// shutdown hang: ^C (context cancellation) must return from the REPL even
// while it is blocked reading input with a watch subscription active.
// Before the fix the REPL blocked in Scanner.Scan with no escape hatch and
// the watch held a context.Background subscription that outlived serve.
func TestReplCtxCancelWithActiveWatch(t *testing.T) {
	n := peer.NewNetwork()
	p, err := n.NewPeer(peer.Config{Name: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.DeclareRelation("data", ast.Extensional, "x"); err != nil {
		t.Fatal(err)
	}

	// An io.Pipe never reaches EOF on its own: like a terminal, the reader
	// blocks until more input arrives — exactly the state ^C interrupts.
	pr, pw := io.Pipe()
	defer pw.Close()
	var out syncBuffer
	ctx, cancel := context.WithCancel(context.Background())

	done := make(chan struct{})
	go func() {
		defer close(done)
		repl(ctx, p, pr, &out)
	}()

	if _, err := io.WriteString(pw, "watch data\n"); err != nil {
		t.Fatal(err)
	}
	// Wait until the watch is registered, so cancellation races against a
	// live subscription rather than an idle loop.
	deadline := time.Now().Add(5 * time.Second)
	for p.Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("watch subscription never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}

	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("repl did not return after ctx cancellation with an active watch")
	}
	// The watch context derives from the REPL's: cancellation must tear
	// the subscription down too, not leak it past serve's exit.
	deadline = time.Now().Add(5 * time.Second)
	for p.Subscribers() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("watch subscription leaked past shutdown: %d live", p.Subscribers())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !strings.Contains(out.String(), "wdl> ") {
		t.Errorf("repl never prompted; output: %q", out.String())
	}
}

// TestReplQuitAndEOF: the other two exit paths still work.
func TestReplQuitAndEOF(t *testing.T) {
	n := peer.NewNetwork()
	p, err := n.NewPeer(peer.Config{Name: "bob"})
	if err != nil {
		t.Fatal(err)
	}
	for _, input := range []string{"quit\n", ""} { // "" = immediate EOF
		var out syncBuffer
		done := make(chan struct{})
		go func() {
			defer close(done)
			repl(context.Background(), p, strings.NewReader(input), &out)
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("repl did not return on %q", input)
		}
	}
}
