package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeProgram(t *testing.T, name, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const unsafeProgram = `peer p;
relation extensional e@p(x);
relation intensional v@p(x, y);
v@p($x, $y) :- e@p($x);
`

func TestCheckReportsPositionedDiagnostics(t *testing.T) {
	path := writeProgram(t, "bad.wdl", unsafeProgram)
	var out bytes.Buffer
	err := runCheck([]string{path}, &out)
	if err == nil || !strings.Contains(err.Error(), "1 error(s)") {
		t.Fatalf("exit error = %v, want 1 error(s)", err)
	}
	want := path + ":4:9: error: [WDL001]"
	if !strings.Contains(out.String(), want) {
		t.Errorf("output %q lacks %q", out.String(), want)
	}
}

func TestCheckJSON(t *testing.T) {
	path := writeProgram(t, "bad.wdl", unsafeProgram)
	var out bytes.Buffer
	if err := runCheck([]string{"-json", path}, &out); err == nil {
		t.Fatal("expected non-nil exit error")
	}
	var diags []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Severity string `json:"severity"`
		Code     string `json:"code"`
		Peer     string `json:"peer"`
	}
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %s", len(diags), out.String())
	}
	d := diags[0]
	if d.File != path || d.Line != 4 || d.Col != 9 || d.Severity != "error" || d.Code != "WDL001" || d.Peer != "p" {
		t.Errorf("diagnostic = %+v", d)
	}
}

func TestCheckParseErrorHasPosition(t *testing.T) {
	path := writeProgram(t, "broken.wdl", "m@p(\n  $x);\n")
	var out bytes.Buffer
	if err := runCheck([]string{path}, &out); err == nil {
		t.Fatal("expected non-nil exit error")
	}
	if !strings.Contains(out.String(), path+":2:") {
		t.Errorf("parse failure output %q lacks %s:2:", out.String(), path)
	}
}

func TestCheckStrictPromotesWarnings(t *testing.T) {
	path := writeProgram(t, "warn.wdl", "peer p;\nrelation extensional unused@p(x);\n")
	var out bytes.Buffer
	if err := runCheck([]string{path}, &out); err != nil {
		t.Fatalf("warnings alone must not fail the default mode: %v", err)
	}
	if err := runCheck([]string{"-strict", path}, &out); err == nil {
		t.Error("-strict did not fail on warnings")
	}
}

// TestCheckExamplesClean mirrors the CI gate: the shipped examples pass
// `wdl check -strict`.
func TestCheckExamplesClean(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "programs", "*.wdl"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no example programs: %v", err)
	}
	var out bytes.Buffer
	if err := runCheck(append([]string{"-strict"}, files...), &out); err != nil {
		t.Errorf("examples not clean: %v\n%s", err, out.String())
	}
	if out.Len() != 0 {
		t.Errorf("unexpected output: %s", out.String())
	}
}

func TestCheckJSONEmptyArray(t *testing.T) {
	path := writeProgram(t, "clean.wdl", "peer p;\nrelation extensional e@p(x);\ne@p(1);\nv@p($x) :- e@p($x);\nrelation intensional v@p(x);\n")
	var out bytes.Buffer
	if err := runCheck([]string{"-json", path}, &out); err != nil {
		t.Fatalf("clean program failed: %v\n%s", err, out.String())
	}
	if got := strings.TrimSpace(out.String()); got != "[]" {
		t.Errorf("clean -json output = %q, want []", got)
	}
}
