// Command wepic runs the paper's demonstration: the Wepic conference
// picture manager. It assembles the Figure 2 topology in-process — attendee
// peers, the sigmod hub on the "cloud", the SigmodFB Facebook-group wrapper
// and the e-mail wrapper — and serves one Web UI per attendee, mounted
// under /peer/<name>/.
//
//	wepic [-listen :8080] [-attendees emilien,jules] [-hub sigmod]
//
// Open http://localhost:8080/ and use the per-attendee UIs to upload,
// share, rate, annotate, customize rules, and approve delegations — the
// demo scenarios of §4.
package main

import (
	"context"
	"flag"
	"fmt"
	"html/template"
	"log"
	"net/http"
	"strings"
	"sync"

	"repro/internal/acl"
	"repro/internal/email"
	"repro/internal/facebook"
	"repro/internal/peer"
	"repro/internal/wepic"
	"repro/internal/wrappers"
)

func main() {
	listen := flag.String("listen", ":8080", "HTTP listen address")
	attendees := flag.String("attendees", "emilien,jules", "comma-separated attendee peer names")
	hubName := flag.String("hub", "sigmod", "name of the hub peer")
	flag.Parse()

	net := peer.NewNetwork()
	fb := facebook.NewService()
	mail := email.NewServer()

	if err := fb.CreateGroup("sigmodgroup", "SIGMOD conference group"); err != nil {
		log.Fatal(err)
	}
	fbGroup, err := wrappers.NewFacebookGroupPeer(net, "sigmodfb", fb, "sigmodgroup")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := wrappers.NewEmailPeer(net, "mailhub", mail); err != nil {
		log.Fatal(err)
	}
	hub, err := wepic.NewHub(net, *hubName, wepic.HubOptions{FacebookPeer: "sigmodfb"})
	if err != nil {
		log.Fatal(err)
	}

	var mu sync.Mutex
	run := func() error {
		mu.Lock()
		defer mu.Unlock()
		fbGroup.Sync()
		_, _, err := net.RunToQuiescence(context.Background(), 500)
		return err
	}

	names := strings.Split(*attendees, ",")
	apps := make(map[string]*wepic.App, len(names))
	mux := http.NewServeMux()
	for _, raw := range names {
		name := strings.TrimSpace(raw)
		if name == "" {
			continue
		}
		app, err := wepic.New(net, name, wepic.Options{
			Hub:      *hubName,
			MailPeer: "mailhub",
			Policy:   acl.NewTrustPolicy(*hubName),
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := fb.AddUser(name, capitalize(name)); err != nil {
			log.Fatal(err)
		}
		if err := fb.JoinGroup(name, "sigmodgroup"); err != nil {
			log.Fatal(err)
		}
		if err := hub.Register(name); err != nil {
			log.Fatal(err)
		}
		apps[name] = app
		ui := wepic.NewUI(app, run)
		mux.Handle("/peer/"+name+"/", http.StripPrefix("/peer/"+name, ui.Handler()))
	}
	if err := run(); err != nil {
		log.Fatal(err)
	}

	mux.HandleFunc("GET /{$}", func(w http.ResponseWriter, r *http.Request) {
		data := struct {
			Attendees []string
			Hub       string
		}{Hub: *hubName}
		for name := range apps {
			data.Attendees = append(data.Attendees, name)
		}
		if err := indexTmpl.Execute(w, data); err != nil {
			fmt.Fprintf(w, "template error: %v", err)
		}
	})

	log.Printf("Wepic demo on http://localhost%s/ — attendees: %s, hub: %s", *listen, *attendees, *hubName)
	log.Fatal(http.ListenAndServe(*listen, mux))
}

// capitalize upper-cases the first byte of an ASCII name for display.
func capitalize(s string) string {
	if s == "" {
		return s
	}
	if c := s[0]; c >= 'a' && c <= 'z' {
		return string(c-'a'+'A') + s[1:]
	}
	return s
}

var indexTmpl = template.Must(template.New("index").Parse(`<!DOCTYPE html>
<html><head><title>Wepic demo</title><style>body{font-family:sans-serif;margin:3em}</style></head>
<body><h1>Wepic — WebdamLog demonstration</h1>
<p>Peers in this deployment (Figure 2 of the paper): the attendees below,
the <em>{{.Hub}}</em> hub, the <em>sigmodfb</em> Facebook-group wrapper and the
<em>mailhub</em> e-mail wrapper.</p>
<ul>{{range .Attendees}}<li><a href="/peer/{{.}}/">{{.}}'s Wepic peer</a></li>{{end}}</ul>
</body></html>`))
