// Command wdlbench regenerates every experiment in docs/EXPERIMENTS.md,
// which describes each experiment id, what it measures and its expected
// shape.
//
// The SIGMOD 2013 demonstration paper contains no quantitative tables; its
// figures are the Wepic UI (Fig. 1), the peer topology (Fig. 2) and the
// delegation-control interface (Fig. 3). wdlbench therefore reproduces:
//
//	e1..e5 — the demonstrated behaviours, as scripted, checked scenarios
//	p1..p10 — performance series quantifying the mechanisms the paper
//	         relies on (fixpoint, stage pipeline, delegation, distribution,
//	         transports, batching, async delivery, anti-entropy resync,
//	         join planning, the daemon service surface under load)
//	i1     — incremental view maintenance vs naive per-stage recomputation
//	a1     — ablations of the remaining design choices (indexes, WAL)
//
// Usage:
//
//	wdlbench [-exp all|e1,e3,p1,p10,i1,...] [-quick]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/acl"
	"repro/internal/bench"
	"repro/internal/email"
	"repro/internal/engine"
	"repro/internal/facebook"
	"repro/internal/peer"
	"repro/internal/transport"
	"repro/internal/wepic"
	"repro/internal/wrappers"
)

var quick bool

// expResult is one experiment's machine-readable outcome (-json). Metrics
// are whatever headline numbers the experiment chose to record via metric().
type expResult struct {
	ID      string             `json:"id"`
	Name    string             `json:"name"`
	Status  string             `json:"status"`
	Error   string             `json:"error,omitempty"`
	Seconds float64            `json:"seconds"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// curMetrics collects the running experiment's headline numbers; the main
// loop swaps in a fresh map before each run.
var curMetrics map[string]float64

// metric records one headline number of the running experiment for -json.
func metric(key string, v float64) {
	if curMetrics != nil {
		curMetrics[key] = v
	}
}

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment ids (e1..e5, p1..p11, i1, a1) or 'all'")
	jsonPath := flag.String("json", "", "write machine-readable per-experiment results (JSON) to this file")
	flag.BoolVar(&quick, "quick", false, "smaller parameter sweeps")
	flag.Parse()

	all := []struct {
		id   string
		name string
		run  func() error
	}{
		{"e1", "E1: Wepic functionality (Figure 1, §3 items 1-5)", runE1},
		{"e2", "E2: Figure 2 topology — Facebook interaction (§4)", runE2},
		{"e3", "E3: control of delegation (Figure 3, §4)", runE3},
		{"e4", "E4: customizing rules (§4)", runE4},
		{"e5", "E5: the §2 delegation example, verbatim", runE5},
		{"p1", "P1: fixpoint — naive vs semi-naive", runP1},
		{"p2", "P2: stage latency decomposition", runP2},
		{"p3", "P3: delegation fan-out vs pre-installed rules", runP3},
		{"p4", "P4: distributed (delegated) vs centralized join", runP4},
		{"p5", "P5: transport throughput — bus vs TCP", runP5},
		{"p6", "P6: update path — per-fact Insert vs atomic Batch (v2 API)", runP6},
		{"p7", "P7: outbox — stage latency vs link RTT; convergence under faults", runP7},
		{"p8", "P8: anti-entropy resync — receiver restart recovery; digest vs full re-send", runP8},
		{"p9", "P9: join planning — cost-based order vs written-order ablation", runP9},
		{"p10", "P10: daemon under load — concurrent applies vs bounded queues", runP10},
		{"p11", "P11: swarm scale — interned, multiplexed follower graph at 10k+ peers", runP11},
		{"i1", "I1: incremental view maintenance vs naive recompute", runI1},
		{"a1", "A1: ablations — indexes, WAL", runA1},
	}
	known := map[string]bool{}
	ids := make([]string, 0, len(all))
	for _, e := range all {
		known[e.id] = true
		ids = append(ids, e.id)
	}
	want := map[string]bool{}
	if *exp != "all" {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(strings.ToLower(id))
			if id == "" {
				continue
			}
			if !known[id] {
				fmt.Fprintf(os.Stderr, "wdlbench: unknown experiment %q (known: %s)\n", id, strings.Join(ids, ", "))
				os.Exit(2)
			}
			want[id] = true
		}
		if len(want) == 0 {
			fmt.Fprintf(os.Stderr, "wdlbench: -exp selected no experiments (known: %s)\n", strings.Join(ids, ", "))
			os.Exit(2)
		}
	}
	failed := 0
	var results []expResult
	for _, e := range all {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		fmt.Printf("\n================================================================\n%s\n================================================================\n", e.name)
		curMetrics = map[string]float64{}
		start := time.Now()
		err := e.run()
		r := expResult{
			ID:      e.id,
			Name:    e.name,
			Status:  "pass",
			Seconds: time.Since(start).Seconds(),
		}
		if len(curMetrics) > 0 {
			r.Metrics = curMetrics
		}
		if err != nil {
			fmt.Printf("!! %s FAILED: %v\n", e.id, err)
			failed++
			r.Status = "fail"
			r.Error = err.Error()
		}
		results = append(results, r)
	}
	if *jsonPath != "" {
		buf, err := json.MarshalIndent(struct {
			Quick   bool        `json:"quick"`
			Results []expResult `json:"results"`
		}{Quick: quick, Results: results}, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonPath, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "wdlbench: writing %s: %v\n", *jsonPath, err)
			failed++
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// demo assembles the Figure 2 deployment.
type demo struct {
	net     *peer.Network
	emilien *wepic.App
	jules   *wepic.App
	hub     *wepic.Hub
	fb      *facebook.Service
	fbGroup *wrappers.FacebookGroupPeer
	mail    *email.Server
}

func buildDemo() (*demo, error) {
	d := &demo{net: peer.NewNetwork(), fb: facebook.NewService(), mail: email.NewServer()}
	for _, u := range [][2]string{{"emilien", "Emilien"}, {"jules", "Jules"}} {
		if err := d.fb.AddUser(u[0], u[1]); err != nil {
			return nil, err
		}
	}
	if err := d.fb.CreateGroup("sigmodgroup", "SIGMOD 2013"); err != nil {
		return nil, err
	}
	for _, u := range []string{"emilien", "jules"} {
		if err := d.fb.JoinGroup(u, "sigmodgroup"); err != nil {
			return nil, err
		}
	}
	var err error
	if d.fbGroup, err = wrappers.NewFacebookGroupPeer(d.net, "sigmodfb", d.fb, "sigmodgroup"); err != nil {
		return nil, err
	}
	if _, err = wrappers.NewEmailPeer(d.net, "mailhub", d.mail); err != nil {
		return nil, err
	}
	if d.hub, err = wepic.NewHub(d.net, "sigmod", wepic.HubOptions{FacebookPeer: "sigmodfb"}); err != nil {
		return nil, err
	}
	opts := wepic.Options{Hub: "sigmod", MailPeer: "mailhub", Policy: acl.NewTrustPolicy("sigmod")}
	if d.emilien, err = wepic.New(d.net, "emilien", opts); err != nil {
		return nil, err
	}
	if d.jules, err = wepic.New(d.net, "jules", opts); err != nil {
		return nil, err
	}
	for _, a := range []string{"emilien", "jules"} {
		if err := d.hub.Register(a); err != nil {
			return nil, err
		}
	}
	return d, d.run()
}

func (d *demo) run() error {
	_, _, err := d.net.RunToQuiescence(context.Background(), 500)
	return err
}

// acceptAll approves pending delegations at both attendees until none remain.
func (d *demo) acceptAll() error {
	for {
		any := false
		for _, a := range []*wepic.App{d.emilien, d.jules} {
			for _, pd := range a.PendingDelegations() {
				if err := a.AcceptDelegation(pd.ID); err != nil {
					return err
				}
				any = true
			}
		}
		if !any {
			return nil
		}
		if err := d.run(); err != nil {
			return err
		}
	}
}

type check struct {
	what string
	ok   bool
	note string
}

func printChecks(checks []check) error {
	bad := 0
	fmt.Printf("| %-58s | %-6s | %s\n", "check", "status", "observed")
	fmt.Printf("|%s|%s|%s\n", strings.Repeat("-", 60), strings.Repeat("-", 8), strings.Repeat("-", 40))
	for _, c := range checks {
		status := "PASS"
		if !c.ok {
			status = "FAIL"
			bad++
		}
		fmt.Printf("| %-58s | %-6s | %s\n", c.what, status, c.note)
	}
	if bad > 0 {
		return fmt.Errorf("%d checks failed", bad)
	}
	return nil
}

func runE1() error {
	d, err := buildDemo()
	if err != nil {
		return err
	}
	var checks []check

	// 1. Upload a picture.
	id, err := d.emilien.Upload("sea.jpg", []byte("jpegbytes"))
	if err != nil {
		return err
	}
	if err := d.run(); err != nil {
		return err
	}
	pics := d.emilien.Pictures()
	checks = append(checks, check{"1. upload a picture from a file",
		len(pics) == 1 && pics[0].Name == "sea.jpg",
		fmt.Sprintf("pictures@emilien has %d rows", len(pics))})

	// 2. View pictures of a particular attendee.
	if err := d.jules.SelectAttendee("emilien"); err != nil {
		return err
	}
	if err := d.run(); err != nil {
		return err
	}
	if err := d.acceptAll(); err != nil {
		return err
	}
	ap := d.jules.AttendeePictures()
	checks = append(checks, check{"2. view pictures provided by a particular attendee",
		len(ap) == 1 && ap[0].Owner == "emilien",
		fmt.Sprintf("attendeePictures@jules has %d rows", len(ap))})

	// 3a. Transfer by the recipient's preferred protocol (email).
	if err := d.emilien.SetProtocol("email"); err != nil {
		return err
	}
	jid, err := d.jules.Upload("talk.jpg", []byte("slides"))
	if err != nil {
		return err
	}
	if err := d.jules.SelectPicture("talk.jpg", jid, "jules"); err != nil {
		return err
	}
	if err := d.run(); err != nil {
		return err
	}
	if err := d.acceptAll(); err != nil {
		return err
	}
	inbox, _ := d.mail.Inbox("emilien")
	checks = append(checks, check{"3a. send pictures by email",
		len(inbox) == 1 && inbox[0].Subject == "talk.jpg",
		fmt.Sprintf("emilien's mailbox has %d messages", len(inbox))})

	// 3b. Get pictures from another peer (the wepic protocol pulls content).
	if err := d.emilien.SetProtocol("wepic"); err != nil {
		return err
	}
	if err := d.run(); err != nil {
		return err
	}
	if err := d.acceptAll(); err != nil {
		return err
	}
	got := false
	for _, p := range d.emilien.Pictures() {
		if p.Name == "talk.jpg" && p.Owner == "jules" {
			got = true
		}
	}
	checks = append(checks, check{"3b. get pictures from another Wepic peer",
		got, fmt.Sprintf("pictures@emilien has %d rows", len(d.emilien.Pictures()))})

	// 4. Annotate: rate, comment, tag.
	if err := d.jules.Rate("emilien", id, 5); err != nil {
		return err
	}
	if err := d.jules.Comment("emilien", id, "superb"); err != nil {
		return err
	}
	if err := d.jules.Tag("emilien", id, "Serge"); err != nil {
		return err
	}
	if err := d.run(); err != nil {
		return err
	}
	ranked := d.emilien.Ranked()
	annotated := len(ranked) > 0 && ranked[0].Ratings == 1 && ranked[0].Comments == 1 && len(ranked[0].Tags) == 1
	checks = append(checks, check{"4. annotate pictures with ratings, comments, name tags",
		annotated, fmt.Sprintf("top picture: %d rating(s), %d comment(s), tags=%v",
			ranked[0].Ratings, ranked[0].Comments, ranked[0].Tags)})

	// 5. Select and rank.
	if err := d.jules.Rate("emilien", jid, 2); err != nil {
		return err
	}
	if err := d.run(); err != nil {
		return err
	}
	ranked = d.emilien.Ranked()
	checks = append(checks, check{"5. select and rank photos based on their annotations",
		len(ranked) >= 2 && ranked[0].AvgStars >= ranked[1].AvgStars,
		fmt.Sprintf("ranking: %s(%.1f) >= %s(%.1f)", ranked[0].Name, ranked[0].AvgStars, ranked[1].Name, ranked[1].AvgStars)})

	return printChecks(checks)
}

func runE2() error {
	d, err := buildDemo()
	if err != nil {
		return err
	}
	var checks []check
	id, err := d.emilien.Upload("boat.jpg", []byte("bytes"))
	if err != nil {
		return err
	}
	if err := d.emilien.Authorize("sigmod", id); err != nil {
		return err
	}
	if err := d.emilien.Authorize("facebook", id); err != nil {
		return err
	}
	if err := d.run(); err != nil {
		return err
	}
	if err := d.acceptAll(); err != nil {
		return err
	}
	hubPics := d.hub.Pictures()
	checks = append(checks, check{"upload at emilien is instantly published to pictures@sigmod",
		len(hubPics) == 1 && hubPics[0].Name == "boat.jpg",
		fmt.Sprintf("pictures@sigmod: %d rows", len(hubPics))})
	photos, err := d.fb.Photos("sigmodgroup")
	if err != nil {
		return err
	}
	checks = append(checks, check{"…then propagated to pictures@SigmodFB (the group)",
		len(photos) == 1 && photos[0].Owner == "emilien",
		fmt.Sprintf("Facebook group photos: %d", len(photos))})

	// Reverse: comments and tags on Facebook flow back.
	if err := d.fb.AddComment("sigmodgroup", photos[0].ID, "jules", "nice"); err != nil {
		return err
	}
	if err := d.fb.AddTag("sigmodgroup", photos[0].ID, "Emilien"); err != nil {
		return err
	}
	d.fbGroup.Sync()
	if err := d.run(); err != nil {
		return err
	}
	checks = append(checks, check{"comments retrieved from the group into comments@sigmod",
		len(d.hub.Peer().Query("comments")) == 1,
		fmt.Sprintf("comments@sigmod: %d rows", len(d.hub.Peer().Query("comments")))})
	checks = append(checks, check{"tags retrieved from the group into tags@sigmod",
		len(d.hub.Peer().Query("tags")) == 1,
		fmt.Sprintf("tags@sigmod: %d rows", len(d.hub.Peer().Query("tags")))})

	// A Facebook-native photo reaches Wepic users without an FB account.
	if _, err := d.fb.PostPhoto("sigmodgroup", "gerome", "keynote.jpg", []byte{7}); err != nil {
		return err
	}
	d.fbGroup.Sync()
	if err := d.run(); err != nil {
		return err
	}
	found := false
	for _, p := range d.hub.Pictures() {
		if p.Name == "keynote.jpg" {
			found = true
		}
	}
	checks = append(checks, check{"photo posted natively on Facebook surfaces at sigmod",
		found, fmt.Sprintf("pictures@sigmod: %d rows", len(d.hub.Pictures()))})
	return printChecks(checks)
}

func runE3() error {
	d, err := buildDemo()
	if err != nil {
		return err
	}
	var checks []check
	if _, err := d.jules.Upload("pic.jpg", []byte{1}); err != nil {
		return err
	}
	// Émilien installs a rule at Jules' peer by selecting him.
	if err := d.emilien.SelectAttendee("jules"); err != nil {
		return err
	}
	if err := d.run(); err != nil {
		return err
	}
	pend := d.jules.PendingDelegations()
	checks = append(checks, check{"delegation from untrusted peer is queued, not installed",
		len(pend) > 0 && len(d.jules.Peer().DelegatedRules()["emilien"]) == 0,
		fmt.Sprintf("%d pending, 0 installed", len(pend))})
	checks = append(checks, check{"no data flows before approval",
		len(d.emilien.AttendeePictures()) == 0,
		fmt.Sprintf("attendeePictures@emilien: %d rows", len(d.emilien.AttendeePictures()))})
	fmt.Println("\npending queue at jules (as shown in Figure 3):")
	for _, pd := range pend {
		fmt.Println("   ", strings.ReplaceAll(pd.String(), "\n", "\n    "))
	}

	for _, pd := range pend {
		if err := d.jules.AcceptDelegation(pd.ID); err != nil {
			return err
		}
	}
	if err := d.run(); err != nil {
		return err
	}
	if err := d.acceptAll(); err != nil {
		return err
	}
	checks = append(checks, check{"after approval the rule is installed (program changed)",
		len(d.jules.Peer().DelegatedRules()["emilien"]) > 0,
		fmt.Sprintf("%d delegated rules installed", len(d.jules.Peer().DelegatedRules()["emilien"]))})
	checks = append(checks, check{"and the delegated view now flows",
		len(d.emilien.AttendeePictures()) == 1,
		fmt.Sprintf("attendeePictures@emilien: %d rows", len(d.emilien.AttendeePictures()))})

	// Rejection path on a fresh network.
	d2, err := buildDemo()
	if err != nil {
		return err
	}
	if err := d2.emilien.SelectAttendee("jules"); err != nil {
		return err
	}
	if err := d2.run(); err != nil {
		return err
	}
	for _, pd := range d2.jules.PendingDelegations() {
		if err := d2.jules.RejectDelegation(pd.ID); err != nil {
			return err
		}
	}
	if err := d2.run(); err != nil {
		return err
	}
	checks = append(checks, check{"rejecting keeps the program unchanged",
		len(d2.jules.Peer().DelegatedRules()["emilien"]) == 0,
		"0 delegated rules installed"})
	return printChecks(checks)
}

func runE4() error {
	d, err := buildDemo()
	if err != nil {
		return err
	}
	var checks []check
	id1, _ := d.emilien.Upload("a.jpg", []byte{1})
	id2, _ := d.emilien.Upload("b.jpg", []byte{2})
	if err := d.emilien.Rate("emilien", id1, 5); err != nil {
		return err
	}
	if err := d.emilien.Rate("emilien", id2, 3); err != nil {
		return err
	}
	if err := d.jules.SelectAttendee("emilien"); err != nil {
		return err
	}
	if err := d.run(); err != nil {
		return err
	}
	if err := d.acceptAll(); err != nil {
		return err
	}
	before := d.jules.AttendeePictures()
	checks = append(checks, check{"default rule shows all pictures of the selected attendee",
		len(before) == 2, fmt.Sprintf("%d pictures in the view", len(before))})

	err = d.jules.Peer().ReplaceRule(wepic.RuleViewAttendeePictures, `
		attendeePictures@jules($id,$name,$owner,$data) :-
			selectedAttendee@jules($attendee),
			pictures@$attendee($id,$name,$owner,$data),
			rate@$owner($id, 5);`)
	if err != nil {
		return err
	}
	if err := d.run(); err != nil {
		return err
	}
	if err := d.acceptAll(); err != nil {
		return err
	}
	after := d.jules.AttendeePictures()
	checks = append(checks, check{"customized rule (rating = 5) narrows the view, as in §4",
		len(after) == 1 && after[0].Name == "a.jpg",
		fmt.Sprintf("view now: %d picture(s), first = %s", len(after), after[0].Name)})
	return printChecks(checks)
}

func runE5() error {
	net := peer.NewNetwork()
	jules, err := net.NewPeer(peer.Config{Name: "jules"})
	if err != nil {
		return err
	}
	emilien, err := net.NewPeer(peer.Config{Name: "emilien"})
	if err != nil {
		return err
	}
	if err := emilien.LoadSource(`
		relation extensional pictures@emilien(id, name, owner, data);
		pictures@emilien(1, "sea.jpg", "emilien", 0xCAFE);
	`); err != nil {
		return err
	}
	if err := jules.LoadSource(`
		relation extensional selectedAttendee@jules(attendee);
		relation intensional attendeePictures@jules(id, name, owner, data);
		selectedAttendee@jules("emilien");
		attendeePictures@jules($id,$name,$owner,$data) :-
			selectedAttendee@jules($attendee),
			pictures@$attendee($id,$name,$owner,$data);
	`); err != nil {
		return err
	}
	if _, _, err := net.RunToQuiescence(context.Background(), 100); err != nil {
		return err
	}
	var checks []check
	delegated := emilien.DelegatedRules()["jules"]
	wantResidual := `attendeePictures@jules($id, $name, $owner, $data) :- pictures@emilien($id, $name, $owner, $data)`
	checks = append(checks, check{"evaluation delegates exactly the residual rule printed in §2",
		len(delegated) == 1 && delegated[0].String() == wantResidual,
		fmt.Sprintf("%d residual rule(s) at emilien", len(delegated))})
	if len(delegated) == 1 {
		fmt.Println("\nresidual rule installed at emilien:")
		fmt.Println("   ", delegated[0].String(), ";")
	}
	checks = append(checks, check{"emilien sends all facts of his pictures relation to jules",
		len(jules.Query("attendeePictures")) == 1,
		fmt.Sprintf("attendeePictures@jules: %d rows", len(jules.Query("attendeePictures")))})

	if err := jules.DeleteString(`selectedAttendee@jules("emilien");`); err != nil {
		return err
	}
	if _, _, err := net.RunToQuiescence(context.Background(), 100); err != nil {
		return err
	}
	checks = append(checks, check{"retracting the selectedAttendee fact withdraws the delegation",
		len(emilien.DelegatedRules()["jules"]) == 0 && len(jules.Query("attendeePictures")) == 0,
		"0 delegated rules, empty view"})
	return printChecks(checks)
}

func runP1() error {
	sizes := []int{50, 100, 200, 400}
	treeSizes := []int{1000, 4000}
	if quick {
		sizes = []int{50, 100}
		treeSizes = []int{1000}
	}
	semi := engine.DefaultOptions()
	naive := engine.DefaultOptions()
	naive.SemiNaive = false
	fmt.Printf("%-18s %9s %9s %12s %12s %9s\n", "workload", "derived", "iter s/n", "semi-naive", "naive", "speedup")
	for _, n := range sizes {
		s, err := bench.RunTC(bench.ChainEdges(n), semi)
		if err != nil {
			return err
		}
		v, err := bench.RunTC(bench.ChainEdges(n), naive)
		if err != nil {
			return err
		}
		fmt.Printf("%-18s %9d %4d/%-4d %12v %12v %8.1fx\n",
			fmt.Sprintf("chain(%d)", n), s.Derived, s.Iterations, v.Iterations,
			s.Duration.Round(time.Microsecond), v.Duration.Round(time.Microsecond),
			float64(v.Duration)/float64(s.Duration))
	}
	for _, n := range treeSizes {
		s, err := bench.RunTC(bench.BinaryTreeEdges(n), semi)
		if err != nil {
			return err
		}
		v, err := bench.RunTC(bench.BinaryTreeEdges(n), naive)
		if err != nil {
			return err
		}
		fmt.Printf("%-18s %9d %4d/%-4d %12v %12v %8.1fx\n",
			fmt.Sprintf("tree(%d)", n), s.Derived, s.Iterations, v.Iterations,
			s.Duration.Round(time.Microsecond), v.Duration.Round(time.Microsecond),
			float64(v.Duration)/float64(s.Duration))
	}
	fmt.Println("\nexpected shape: semi-naive wins, and the gap widens with workload size.")
	return nil
}

func runP2() error {
	sizes := []int{100, 1000, 10000}
	if quick {
		sizes = []int{100, 1000}
	}
	fmt.Printf("%-12s %12s %12s %12s %12s\n", "facts", "ingest", "fixpoint", "emit", "total")
	for _, n := range sizes {
		d, err := bench.RunStageDecomposition(n)
		if err != nil {
			return err
		}
		total := d.Ingest + d.Fixpoint + d.Emit
		fmt.Printf("%-12d %12v %12v %12v %12v\n", n,
			d.Ingest.Round(time.Microsecond), d.Fixpoint.Round(time.Microsecond),
			d.Emit.Round(time.Microsecond), total.Round(time.Microsecond))
	}
	fmt.Println("\nexpected shape: all three steps scale roughly linearly in the input batch.")
	return nil
}

func runP3() error {
	fans := []int{2, 4, 8, 16, 32, 64}
	if quick {
		fans = []int{2, 8, 32}
	}
	fmt.Printf("%-8s %14s %10s %14s %10s %10s\n", "peers", "delegated", "msgs", "preinstalled", "msgs", "overhead")
	for _, n := range fans {
		d, err := bench.RunDelegationFanout(n, 20)
		if err != nil {
			return err
		}
		p, err := bench.RunPreinstalledFanout(n, 20)
		if err != nil {
			return err
		}
		if d.Collected != n*20 || p.Collected != n*20 {
			return fmt.Errorf("p3: wrong answers: delegated=%d preinstalled=%d want %d", d.Collected, p.Collected, n*20)
		}
		fmt.Printf("%-8d %14v %10d %14v %10d %9.2fx\n", n,
			d.Duration.Round(time.Microsecond), d.Messages,
			p.Duration.Round(time.Microsecond), p.Messages,
			float64(d.Duration)/float64(p.Duration))
	}
	fmt.Println("\nexpected shape: run-time delegation costs within a small constant factor of")
	fmt.Println("statically installed rules — the flexibility is close to free.")
	return nil
}

func runP4() error {
	fans := []int{2, 4, 8, 16}
	if quick {
		fans = []int{4, 16}
	}
	fmt.Printf("%-8s | %12s %12s | %12s %12s | %s\n", "peers", "deleg time", "facts moved", "central time", "facts moved", "reduction")
	for _, n := range fans {
		d, err := bench.RunDistributedJoin(n, 200, 5)
		if err != nil {
			return err
		}
		c, err := bench.RunCentralizedJoin(n, 200, 5)
		if err != nil {
			return err
		}
		if d.Answers != c.Answers {
			return fmt.Errorf("p4: answers differ: %d vs %d", d.Answers, c.Answers)
		}
		fmt.Printf("%-8d | %12v %12d | %12v %12d | %7.1fx fewer facts shipped\n", n,
			d.Duration.Round(time.Microsecond), d.FactsShipped,
			c.Duration.Round(time.Microsecond), c.FactsShipped,
			float64(c.FactsShipped)/float64(d.FactsShipped))
	}
	fmt.Println("\nexpected shape: delegation evaluates in place and ships only matches;")
	fmt.Println("centralizing ships every base fact (the paper's §1 motivation).")
	return nil
}

func runP5() error {
	n := 20000
	if quick {
		n = 2000
	}
	fmt.Printf("%-10s %10s %12s %14s\n", "transport", "payload", "messages/s", "per message")
	for _, payload := range []int{64, 4096} {
		r, err := bench.RunBusThroughput(n, payload)
		if err != nil {
			return err
		}
		perMsg := r.Duration / time.Duration(r.Messages)
		fmt.Printf("%-10s %9dB %12.0f %14v\n", "bus", payload, float64(r.Messages)/r.Duration.Seconds(), perMsg)
	}
	for _, payload := range []int{64, 4096} {
		r, err := bench.RunTCPThroughput(n, payload)
		if err != nil {
			return err
		}
		perMsg := r.Duration / time.Duration(r.Messages)
		fmt.Printf("%-10s %9dB %12.0f %14v\n", "tcp+gob", payload, float64(r.Messages)/r.Duration.Seconds(), perMsg)
	}
	fmt.Println("\nexpected shape: the in-memory bus is orders of magnitude faster; TCP+gob")
	fmt.Println("is the cost of genuine distribution (the demo's laptop/cloud deployment).")
	return nil
}

func runP6() error {
	sizes := []int{1000, 10000, 100000}
	if quick {
		sizes = []int{1000, 10000}
	}
	fmt.Printf("%-10s | %12s %8s | %12s %8s | %s\n", "facts", "per-fact", "stages", "batched", "stages", "speedup")
	for _, n := range sizes {
		perFact, err := bench.RunInsertPath(n, false)
		if err != nil {
			return err
		}
		batched, err := bench.RunInsertPath(n, true)
		if err != nil {
			return err
		}
		if batched.Stages > 2 {
			return fmt.Errorf("p6: batched path ran %d stages, want at most 2", batched.Stages)
		}
		fmt.Printf("%-10d | %12v %8d | %12v %8d | %6.1fx\n", n,
			perFact.Duration.Round(time.Microsecond), perFact.Stages,
			batched.Duration.Round(time.Microsecond), batched.Stages,
			float64(perFact.Duration)/float64(batched.Duration))
	}
	fmt.Println("\n-- remote updates over TCP: n framed messages vs one --")
	remoteSizes := []int{1000, 10000}
	if quick {
		remoteSizes = []int{1000}
	}
	fmt.Printf("%-10s | %12s %8s | %12s %8s | %s\n", "facts", "per-fact", "stages", "batched", "stages", "speedup")
	for _, n := range remoteSizes {
		perFact, err := bench.RunRemoteInsertPath(n, false)
		if err != nil {
			return err
		}
		batched, err := bench.RunRemoteInsertPath(n, true)
		if err != nil {
			return err
		}
		fmt.Printf("%-10d | %12v %8d | %12v %8d | %6.1fx\n", n,
			perFact.Duration.Round(time.Microsecond), perFact.Stages,
			batched.Duration.Round(time.Microsecond), batched.Stages,
			float64(perFact.Duration)/float64(batched.Duration))
	}
	fmt.Println("\nexpected shape: locally the batch bounds the run at one ingest fixpoint,")
	fmt.Println("winning once per-stage work is real; over TCP one frame replaces n and")
	fmt.Println("the gap is decisive.")
	return nil
}

func runP7() error {
	updates := 20
	rtts := []time.Duration{0, 2 * time.Millisecond, 10 * time.Millisecond}
	if quick {
		updates = 8
		rtts = []time.Duration{0, 2 * time.Millisecond}
	}
	fmt.Println("-- stage commit latency vs destination RTT --")
	fmt.Printf("%-10s %14s %14s %14s\n", "link RTT", "stage total", "emit step", "e2e delivery")
	for _, rtt := range rtts {
		r, err := bench.RunOutboxLatency(updates, rtt)
		if err != nil {
			return err
		}
		fmt.Printf("%-10v %14v %14v %14v\n", rtt,
			r.StageAvg.Round(time.Microsecond), r.EmitAvg.Round(time.Microsecond),
			r.E2EAvg.Round(time.Microsecond))
		if rtt > 0 && r.StageAvg > rtt {
			return fmt.Errorf("p7: stage latency %v inherited the link RTT %v — a stage blocked on the network", r.StageAvg, rtt)
		}
	}

	fmt.Println("\n-- convergence under injected faults --")
	ops := 60
	if quick {
		ops = 25
	}
	schedules := []struct {
		name string
		cfg  transport.FaultConfig
	}{
		{"drop 30%", transport.FaultConfig{Seed: 21, Drop: 0.3}},
		{"dup 30%", transport.FaultConfig{Seed: 22, Dup: 0.3}},
		{"reorder 30%", transport.FaultConfig{Seed: 23, Reorder: 0.3}},
		{"mixed", transport.FaultConfig{Seed: 24, Drop: 0.15, Dup: 0.1, Reorder: 0.1, Fail: 0.1}},
	}
	fmt.Printf("%-12s %6s %10s %12s | %8s %8s %8s %8s %8s\n",
		"schedule", "ops", "converged", "time", "sent", "dropped", "dup", "reorder", "retrans")
	for _, s := range schedules {
		r, err := bench.RunFaultConvergence(ops, s.cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %6d %10v %12v | %8d %8d %8d %8d %8d\n",
			s.name, r.Ops, r.Converged, r.Duration.Round(time.Millisecond),
			r.Faults.Sent, r.Faults.Dropped, r.Faults.Duplicated, r.Faults.Reordered, r.Retransmits)
		if !r.Converged {
			return fmt.Errorf("p7: %s schedule did not converge", s.name)
		}
	}
	fmt.Println("\nexpected shape: the stage's emit step is enqueue-only, so stage latency is")
	fmt.Println("flat microseconds while end-to-end delivery tracks the link RTT; under")
	fmt.Println("drop/dup/reorder faults the acked outbox retransmits until the receiver's")
	fmt.Println("view equals the sender's contents exactly.")
	return nil
}

func runP8() error {
	ops := 200
	if quick {
		ops = 60
	}
	fmt.Println("-- receiver restart: kill and restart the volatile receiver, no further sender change --")
	fmt.Printf("%-14s %8s %10s %10s %10s %10s %10s %12s\n",
		"mode", "ops", "fixpoint", "rows after", "recovered", "requests", "snapshots", "recovery")
	withR, err := bench.RunReceiverRestart(ops, true)
	if err != nil {
		return err
	}
	fmt.Printf("%-14s %8d %10d %10d %10v %10d %10d %12v\n", "resync",
		withR.Ops, withR.FixpointRows, withR.RowsAfter, withR.Recovered,
		withR.Requests, withR.Snapshots, withR.RecoveryTime.Round(time.Millisecond))
	without, err := bench.RunReceiverRestart(ops, false)
	if err != nil {
		return err
	}
	fmt.Printf("%-14s %8d %10d %10d %10v %10d %10d %12s\n", "no resync",
		without.Ops, without.FixpointRows, without.RowsAfter, without.Recovered,
		without.Requests, without.Snapshots, "-")
	if !withR.Recovered {
		return fmt.Errorf("p8: receiver did not recover the fixpoint via resync")
	}
	if without.Recovered {
		return fmt.Errorf("p8: receiver recovered with resync disabled — the ablation is not measuring the mechanism")
	}

	fmt.Println("\n-- steady-state anti-entropy cost per period, unchanged view --")
	fmt.Printf("%-14s %12s | %-22s %12s | %s\n", "digest advert", "bytes", "naive full re-send", "bytes", "ratio")
	fmt.Printf("%-14s %12d | %-22s %12d | %.1fx smaller\n", "",
		withR.DigestBytes, "", withR.SnapshotBytes,
		float64(withR.SnapshotBytes)/float64(withR.DigestBytes))
	if withR.DigestBytes >= withR.SnapshotBytes {
		return fmt.Errorf("p8: digest advert (%dB) is not smaller than a full re-send (%dB)",
			withR.DigestBytes, withR.SnapshotBytes)
	}
	metric("steady_digest_bytes", float64(withR.DigestBytes))
	metric("steady_snapshot_bytes", float64(withR.SnapshotBytes))

	// Large-view tier: the *sender* restarts against a receiver whose huge
	// maintained ledger is intact except for a small δ. The ranged arm must
	// repair through the Merkle bisection dialogue — no full snapshot served
	// — in a small fraction of the full view's wire cost. The ablation arm
	// (dialogue disabled) runs at the smallest tier and must converge to the
	// identical fixpoint by re-shipping the whole view, which also validates
	// the measured counterfactual snapshot size the larger tiers assert
	// their ratio against.
	fmt.Println("\n-- large-view repair: sender restart, δ-divergent intact receiver ledger --")
	tiers := []struct {
		size, div int
		minRatio  float64
	}{
		{100_000, 32, 20},
		{1_000_000, 32, 100},
	}
	if quick {
		tiers = tiers[:1]
	}
	fmt.Printf("%-10s %6s %10s %10s | %12s %14s | %10s\n",
		"view", "δ", "recovered", "recovery", "repair bytes", "full view", "ratio")
	for _, tier := range tiers {
		r, err := bench.RunLargeViewRepair(tier.size, tier.div, true)
		if err != nil {
			return err
		}
		if !r.Recovered {
			return fmt.Errorf("p8: large-view ranged repair did not recover the fixpoint at %d facts", tier.size)
		}
		if r.Snapshots != 0 {
			return fmt.Errorf("p8: large-view ranged arm served %d full snapshots at %d facts; want 0", r.Snapshots, tier.size)
		}
		if r.RangedRepairs == 0 {
			return fmt.Errorf("p8: large-view ranged arm served no ranged repairs at %d facts", tier.size)
		}
		ratio := float64(r.FullViewBytes) / float64(r.RepairBytes)
		fmt.Printf("%-10d %6d %10v %10v | %12d %14d | %8.0fx\n",
			r.ViewSize, r.Divergence, r.Recovered, r.Recovery.Round(time.Millisecond),
			r.RepairBytes, r.FullViewBytes, ratio)
		metric(fmt.Sprintf("large_%d_repair_bytes", tier.size), float64(r.RepairBytes))
		metric(fmt.Sprintf("large_%d_full_view_bytes", tier.size), float64(r.FullViewBytes))
		metric(fmt.Sprintf("large_%d_ratio", tier.size), ratio)
		if ratio < tier.minRatio {
			return fmt.Errorf("p8: ranged repair is only %.1fx smaller than a full snapshot at %d facts; want >= %.0fx",
				ratio, tier.size, tier.minRatio)
		}
	}
	abl, err := bench.RunLargeViewRepair(tiers[0].size, tiers[0].div, false)
	if err != nil {
		return err
	}
	if !abl.Recovered {
		return fmt.Errorf("p8: large-view snapshot ablation did not recover the fixpoint")
	}
	if abl.Snapshots == 0 || abl.RangedRepairs != 0 {
		return fmt.Errorf("p8: large-view ablation took the wrong path: %d snapshots, %d ranged repairs",
			abl.Snapshots, abl.RangedRepairs)
	}
	if abl.SnapshotBytes < abl.FullViewBytes {
		return fmt.Errorf("p8: ablation served %dB of snapshot, below one measured full view (%dB) — the counterfactual is off",
			abl.SnapshotBytes, abl.FullViewBytes)
	}
	fmt.Printf("%-10d %6d %10v %10v | %12d %14s | %s\n",
		abl.ViewSize, abl.Divergence, abl.Recovered, abl.Recovery.Round(time.Millisecond),
		abl.SnapshotBytes, "(ablation)", "full snapshot path")
	metric("large_ablation_snapshot_bytes", float64(abl.SnapshotBytes))

	fmt.Println("\nexpected shape: without resync the restarted receiver stays empty forever")
	fmt.Println("(the documented pre-resync gap); with it, the sender's periodic digest advert")
	fmt.Println("finds the empty receiver, a stream reset replays a snapshot, and contents")
	fmt.Println("equal the fault-free fixpoint — while an unchanged view costs only a")
	fmt.Println("constant-size digest per period instead of a full re-send. On the large-view")
	fmt.Println("tier the Merkle bisection dialogue repairs a δ-key divergence in O(δ log n)")
	fmt.Println("bytes — two orders of magnitude under the O(view) snapshot at the 1M tier —")
	fmt.Println("while both repair paths converge to the identical fixpoint.")
	return nil
}

func runP9() error {
	sizes := []int{1000, 10000, 100000}
	if quick {
		sizes = []int{1000, 10000}
	}
	fmt.Printf("%-10s | %12s %8s | %12s %8s | %s\n",
		"rows/rel", "planner", "result", "written", "result", "speedup")
	var lastSpeedup float64
	for _, n := range sizes {
		planned, err := bench.RunPlannerJoin(n, true)
		if err != nil {
			return err
		}
		written, err := bench.RunPlannerJoin(n, false)
		if err != nil {
			return err
		}
		if planned.Rows != written.Rows || planned.FP != written.FP {
			return fmt.Errorf("p9: modes disagree at n=%d: planner %d rows (fp %x), written %d rows (fp %x)",
				n, planned.Rows, planned.FP, written.Rows, written.FP)
		}
		lastSpeedup = float64(written.PerStage) / float64(planned.PerStage)
		fmt.Printf("%-10d | %12v %8d | %12v %8d | %6.1fx\n", n,
			planned.PerStage.Round(time.Microsecond), planned.Rows,
			written.PerStage.Round(time.Microsecond), written.Rows,
			lastSpeedup)
	}
	if lastSpeedup < 10 {
		return fmt.Errorf("p9: planner is only %.1fx faster than written order at the largest tier; want >= 10x", lastSpeedup)
	}
	fmt.Println("\nexpected shape: the written order drags every row of the largest relation")
	fmt.Println("through the chain before the four-row selector prunes; the planner starts")
	fmt.Println("from the selector and probes the chain backwards, so the gap grows linearly")
	fmt.Println("with the relation size — orders of magnitude at the 100k tier, with both")
	fmt.Println("modes producing identical view contents.")

	// Compiled tier: same planner in both modes; the only axis is whether
	// the per-stage walk runs the compiled closure chains or the interpreter.
	fmt.Printf("\n%-10s | %12s %8s | %12s %8s | %s\n",
		"rows/rel", "compiled", "result", "interpreted", "result", "speedup")
	var compSpeedup float64
	for _, n := range sizes {
		comp, interp, err := bench.RunCompiledJoin(n)
		if err != nil {
			return err
		}
		if comp.Rows != interp.Rows || comp.FP != interp.FP {
			return fmt.Errorf("p9: compiled tier modes disagree at n=%d: compiled %d rows (fp %x), interpreted %d rows (fp %x)",
				n, comp.Rows, comp.FP, interp.Rows, interp.FP)
		}
		compSpeedup = float64(interp.PerStage) / float64(comp.PerStage)
		fmt.Printf("%-10d | %12v %8d | %12v %8d | %6.1fx\n", n,
			comp.PerStage.Round(time.Microsecond), comp.Rows,
			interp.PerStage.Round(time.Microsecond), interp.Rows,
			compSpeedup)
	}
	if compSpeedup < 5 {
		return fmt.Errorf("p9: compiled execution is only %.1fx faster than the interpreter at the largest tier; want >= 5x", compSpeedup)
	}
	fmt.Println("\nexpected shape: both modes run the identical planned order — a scan (or")
	fmt.Println("delta walk) of n rows through variable binding, a builtin filter chain,")
	fmt.Println("and a keyed join probe for the survivors — so the gap is pure per-tuple")
	fmt.Println("interpretation overhead: the interpreter re-resolves names, re-checks")
	fmt.Println("builtin arity, and allocates argument vectors and continuations at every")
	fmt.Println("visit, while the compiled closure chain binds fixed slots and runs")
	fmt.Println("precompiled comparisons. The ratio is roughly size-independent and holds")
	fmt.Println("at 5x or better, with identical view contents in both modes.")
	return nil
}

func runP10() error {
	// Client-count sweep against a live wdld daemon: every client POSTs
	// batches to /apply, the hub derives a view shipped over TCP to a
	// watcher with a live subscription attached. Queues are bounded and a
	// monitor fails the run if any of them grows without bound.
	tiers := []int{50, 200, 1000, 2000}
	reqs, batch, limit := 5, 2, 64
	if quick {
		tiers = []int{50, 200}
		reqs = 3
	}
	// The ceiling is in outbox entries (coalesced stage emissions, not
	// facts): flow-controlled ingest keeps depth near the limit, while an
	// unbounded queue would track the total request count.
	ceiling := 8 * limit
	fmt.Printf("%-8s | %8s | %9s %9s %9s | %12s | %9s | %s\n",
		"clients", "updates", "p50", "p99", "max", "updates/s", "max depth", "sub drops")
	for _, clients := range tiers {
		r, err := bench.RunDaemonLoad(clients, reqs, batch, limit, ceiling)
		if err != nil {
			return err
		}
		fmt.Printf("%-8d | %8d | %9v %9v %9v | %12.0f | %9d | %d\n",
			r.Clients, r.Updates,
			r.P50.Round(10*time.Microsecond), r.P99.Round(10*time.Microsecond), r.Max.Round(10*time.Microsecond),
			r.UpdatesPerSec, r.MaxOutboxDepth, r.SubscriptionDrops)
	}
	fmt.Println("\nexpected shape: p50 apply latency stays flat as the client count grows")
	fmt.Println("until the daemon saturates, then rises as admission control holds callers")
	fmt.Println("at the bounded queues instead of letting them pile up; the max outbox")
	fmt.Println("depth stays near the configured limit at every tier (no unbounded queue);")
	fmt.Println("the watcher's view — and the subscription consumer's replica, across any")
	fmt.Println("shed-and-resubscribe cycles its bounded channel forces — converges to")
	fmt.Println("every applied fact.")
	return nil
}

func runP11() error {
	// Swarm scale: a wepic-style follower graph of in-process peers, every
	// follow edge a push rule maintaining the author's posts into the
	// follower's feed. One interner, one mux, the wake-queue scheduler. The
	// run *fails* (not just reports) when its scale properties break:
	// super-linear memory growth across tiers, interning not paying for
	// itself against the non-interned ablation, or the scheduler examining
	// anything on a quiescent swarm.
	tiers := []int{25000, 100000}
	updRounds, updPerRound := 3, 400
	if quick {
		tiers = []int{2500, 10000}
		updRounds, updPerRound = 2, 200
	}
	base := bench.SwarmSpec{Follows: 4, Posts: 16, PostBytes: 128, Seed: 1109, Intern: true}

	fmt.Printf("%-8s | %8s | %9s | %9s | %12s | %12s | %s\n",
		"peers", "edges", "facts", "build", "updates/s", "bytes/peer", "quiescent scans")
	perPeer := make([]float64, 0, len(tiers))
	var last bench.SwarmResult
	for _, n := range tiers {
		spec := base
		spec.Peers = n
		r, err := bench.RunSwarm(spec, updRounds, updPerRound)
		if err != nil {
			return err
		}
		fmt.Printf("%-8d | %8d | %9d | %9v | %12.0f | %12.0f | %d\n",
			r.Peers, r.Edges, r.Facts, r.BuildDuration.Round(time.Millisecond),
			r.UpdatesPerSec, r.BytesPerPeer, r.QuiescentScans)
		if r.QuiescentScans != 0 {
			return fmt.Errorf("p11: quiescent swarm of %d peers was scanned %d times; the wake-queue scheduler must cost nothing at rest", n, r.QuiescentScans)
		}
		perPeer = append(perPeer, r.BytesPerPeer)
		last = r
	}

	// Memory linearity: bytes/peer must not grow with the population.
	ratio := perPeer[len(perPeer)-1] / perPeer[0]
	if ratio > 1.5 {
		return fmt.Errorf("p11: bytes/peer grew %.2fx from %d to %d peers (super-linear memory)", ratio, tiers[0], tiers[len(tiers)-1])
	}

	// Interning ablation at the small tier: shared storage must pay.
	abl := base
	abl.Peers = tiers[0]
	abl.Intern = false
	ar, err := bench.RunSwarm(abl, updRounds, updPerRound)
	if err != nil {
		return err
	}
	internRatio := perPeer[0] / ar.BytesPerPeer
	fmt.Printf("\nablation (no interning, %d peers): %.0f bytes/peer — interned/plain ratio %.2f\n",
		abl.Peers, ar.BytesPerPeer, internRatio)
	if internRatio > 0.9 {
		return fmt.Errorf("p11: interning saves only %.0f%% (ratio %.2f, want <= 0.90)", (1-internRatio)*100, internRatio)
	}

	metric("peers", float64(last.Peers))
	metric("facts", float64(last.Facts))
	metric("updates_per_sec", last.UpdatesPerSec)
	metric("bytes_per_peer", perPeer[len(perPeer)-1])
	metric("bytes_per_peer_ablation", ar.BytesPerPeer)
	metric("mem_ratio", ratio)
	metric("intern_ratio", internRatio)
	metric("quiescent_scans", float64(last.QuiescentScans))
	metric("interned_tuples", float64(last.InternedTuples))

	fmt.Println("\nexpected shape: bytes/peer stays flat as the population grows (the")
	fmt.Println("intern table amortizes every replicated fact across its followers), the")
	fmt.Println("interned arm undercuts the ablation, and the quiescent-scan column is")
	fmt.Println("zero — the scheduler discovers work through wake hooks, so an idle")
	fmt.Println("swarm costs nothing per round regardless of its size.")
	return nil
}

func runI1() error {
	sizes := []int{1000, 10000, 100000}
	rounds := 20
	if quick {
		sizes = []int{1000, 10000}
		rounds = 5
	}
	fmt.Printf("%-10s | %12s %14s | %12s %14s | %s\n",
		"facts", "incr setup", "incr/update", "naive setup", "naive/update", "speedup")
	for _, n := range sizes {
		inc, err := bench.RunIncrementalUpdate(n, rounds, true)
		if err != nil {
			return err
		}
		naive, err := bench.RunIncrementalUpdate(n, rounds, false)
		if err != nil {
			return err
		}
		if inc.ViewRows != naive.ViewRows || inc.ViewFP != naive.ViewFP {
			return fmt.Errorf("i1: modes disagree at n=%d: incremental %d rows (fp %x), naive %d rows (fp %x)",
				n, inc.ViewRows, inc.ViewFP, naive.ViewRows, naive.ViewFP)
		}
		fmt.Printf("%-10d | %12v %14v | %12v %14v | %6.1fx\n", n,
			inc.Setup.Round(time.Microsecond), inc.PerUpdate.Round(time.Microsecond),
			naive.Setup.Round(time.Microsecond), naive.PerUpdate.Round(time.Microsecond),
			float64(naive.PerUpdate)/float64(inc.PerUpdate))
	}

	steps := 60
	if quick {
		steps = 25
	}
	checked, err := bench.RunIncrementalAgreement(steps, 20130523)
	if err != nil {
		return err
	}
	fmt.Printf("\nagreement: incremental and naive views identical after each of %d random\n", checked)
	fmt.Println("insert/delete batches over a recursive closure program.")
	fmt.Println("\nexpected shape: naive update latency grows with the database (the whole view")
	fmt.Println("is recomputed per stage); incremental latency is bounded by the delta, so the")
	fmt.Println("gap widens with n — well past 10x at the 100k tier.")
	return nil
}

func runA1() error {
	rows := []int{1000, 10000}
	if quick {
		rows = []int{1000}
	}
	fmt.Println("-- column hash indexes on join attributes --")
	fmt.Printf("%-12s %14s %14s %10s\n", "rows/side", "indexed", "full scan", "speedup")
	for _, n := range rows {
		idx, err := bench.RunJoinAblation(n, n, true)
		if err != nil {
			return err
		}
		scan, err := bench.RunJoinAblation(n, n, false)
		if err != nil {
			return err
		}
		fmt.Printf("%-12d %14v %14v %9.1fx\n", n,
			idx.Duration.Round(time.Microsecond), scan.Duration.Round(time.Microsecond),
			float64(scan.Duration)/float64(idx.Duration))
	}

	fmt.Println("\n-- write-ahead-log durability on the update path --")
	nf := 5000
	if quick {
		nf = 1000
	}
	noWal, err := bench.RunWALAblation(nf, "")
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "wdlbench-wal")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	wal, err := bench.RunWALAblation(nf, dir)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %14s %14s %10s\n", "facts", "volatile", "durable", "cost")
	fmt.Printf("%-12d %14v %14v %9.1fx\n", nf,
		noWal.Duration.Round(time.Microsecond), wal.Duration.Round(time.Microsecond),
		float64(wal.Duration)/float64(noWal.Duration))
	return nil
}
