// Command wdld runs WebdamLog peers as a long-lived daemon: many peers in
// one process, each on its own TCP listener, with an HTTP admin surface
// for health checks, Prometheus metrics, live peer/relation inspection,
// and remote updates.
//
//	wdld -config daemon.json [-drain-timeout 30s]
//
// The config file is JSON (see docs/operations.md for the format and the
// full metrics catalog). On SIGTERM or SIGINT the daemon drains: it stops
// admitting writes, waits for every outbox to empty (bounded by
// -drain-timeout), then shuts down. A second signal aborts the drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/daemon"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wdld:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("wdld", flag.ExitOnError)
	configPath := fs.String("config", "", "JSON config file (required)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for outboxes to empty")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *configPath == "" {
		return fmt.Errorf("-config is required")
	}
	cfg, err := daemon.LoadConfig(*configPath)
	if err != nil {
		return err
	}
	d, err := daemon.New(cfg)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	if err := d.Start(context.Background()); err != nil {
		return err
	}
	for _, pc := range cfg.Peers {
		fmt.Printf("peer %s listening on %s\n", pc.Name, d.PeerAddr(pc.Name))
	}
	fmt.Printf("admin on http://%s\n", d.AdminAddr())

	<-ctx.Done()
	stop() // a second signal kills the process instead of waiting out the drain
	fmt.Fprintln(os.Stderr, "wdld: draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := d.Drain(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "wdld:", err)
	}
	return d.Close()
}
