// Benchmarks regenerating the performance series of EXPERIMENTS.md.
// The SIGMOD 2013 demonstration paper has no quantitative tables, so the
// series quantify the behaviours it demonstrates and claims qualitatively:
//
//	P1  BenchmarkFixpoint*     — naive vs semi-naive fixpoint (the engine
//	                             choice replacing Bud)
//	P2  BenchmarkStage*        — the three-step stage pipeline of §2
//	P3  BenchmarkDelegation*   — run-time delegation fan-out vs statically
//	                             pre-installed rules
//	P4  BenchmarkDistribution* — in-place distributed join vs centralizing
//	                             the data (§1's "manage data in place")
//	P5  BenchmarkTransport*    — in-memory bus vs TCP/gob messaging
//	A1  BenchmarkAblation*     — indexes on/off, WAL on/off
//
// Run with: go test -bench=. -benchmem
package webdamlog_test

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/engine"
)

func opts(semiNaive bool) engine.Options {
	o := engine.DefaultOptions()
	o.SemiNaive = semiNaive
	return o
}

func benchTC(b *testing.B, edges [][2]int64, semiNaive bool) {
	b.Helper()
	var derived int
	for i := 0; i < b.N; i++ {
		res, err := bench.RunTC(edges, opts(semiNaive))
		if err != nil {
			b.Fatal(err)
		}
		derived = res.Derived
	}
	b.ReportMetric(float64(derived), "facts_derived")
}

func BenchmarkFixpointSemiNaiveChain(b *testing.B) {
	for _, n := range []int{50, 100, 200, 400} {
		b.Run(fmt.Sprintf("edges=%d", n), func(b *testing.B) {
			benchTC(b, bench.ChainEdges(n), true)
		})
	}
}

func BenchmarkFixpointNaiveChain(b *testing.B) {
	for _, n := range []int{50, 100, 200, 400} {
		b.Run(fmt.Sprintf("edges=%d", n), func(b *testing.B) {
			benchTC(b, bench.ChainEdges(n), false)
		})
	}
}

func BenchmarkFixpointSemiNaiveTree(b *testing.B) {
	for _, n := range []int{1000, 4000, 16000} {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			benchTC(b, bench.BinaryTreeEdges(n), true)
		})
	}
}

func BenchmarkFixpointNaiveTree(b *testing.B) {
	for _, n := range []int{1000, 4000} {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			benchTC(b, bench.BinaryTreeEdges(n), false)
		})
	}
}

func BenchmarkStagePipeline(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("facts=%d", n), func(b *testing.B) {
			var last bench.StageDecomposition
			for i := 0; i < b.N; i++ {
				var err error
				last, err = bench.RunStageDecomposition(n)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(last.Ingest.Nanoseconds())/float64(n), "ns_ingest/fact")
			b.ReportMetric(float64(last.Fixpoint.Nanoseconds())/float64(n), "ns_fixpoint/fact")
			b.ReportMetric(float64(last.Emit.Nanoseconds())/float64(n), "ns_emit/fact")
		})
	}
}

func BenchmarkDelegationFanout(b *testing.B) {
	for _, peers := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("peers=%d", peers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := bench.RunDelegationFanout(peers, 20)
				if err != nil {
					b.Fatal(err)
				}
				if res.Collected != peers*20 {
					b.Fatalf("collected %d, want %d", res.Collected, peers*20)
				}
			}
		})
	}
}

func BenchmarkDelegationPreinstalledBaseline(b *testing.B) {
	for _, peers := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("peers=%d", peers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := bench.RunPreinstalledFanout(peers, 20)
				if err != nil {
					b.Fatal(err)
				}
				if res.Collected != peers*20 {
					b.Fatalf("collected %d, want %d", res.Collected, peers*20)
				}
			}
		})
	}
}

func BenchmarkDistributionDelegatedJoin(b *testing.B) {
	for _, peers := range []int{4, 16} {
		b.Run(fmt.Sprintf("peers=%d", peers), func(b *testing.B) {
			var msgs uint64
			for i := 0; i < b.N; i++ {
				res, err := bench.RunDistributedJoin(peers, 200, 5)
				if err != nil {
					b.Fatal(err)
				}
				msgs = res.Messages
			}
			b.ReportMetric(float64(msgs), "messages")
		})
	}
}

func BenchmarkDistributionCentralizedBaseline(b *testing.B) {
	for _, peers := range []int{4, 16} {
		b.Run(fmt.Sprintf("peers=%d", peers), func(b *testing.B) {
			var msgs uint64
			for i := 0; i < b.N; i++ {
				res, err := bench.RunCentralizedJoin(peers, 200, 5)
				if err != nil {
					b.Fatal(err)
				}
				msgs = res.Messages
			}
			b.ReportMetric(float64(msgs), "messages")
		})
	}
}

func BenchmarkTransportBus(b *testing.B) {
	for _, payload := range []int{64, 4096} {
		b.Run(fmt.Sprintf("payload=%dB", payload), func(b *testing.B) {
			res, err := bench.RunBusThroughput(b.N, payload)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(res.BytesEach))
		})
	}
}

func BenchmarkTransportTCP(b *testing.B) {
	for _, payload := range []int{64, 4096} {
		b.Run(fmt.Sprintf("payload=%dB", payload), func(b *testing.B) {
			res, err := bench.RunTCPThroughput(b.N, payload)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(res.BytesEach))
		})
	}
}

// BenchmarkBatchInsert compares N single Insert calls against one atomic
// Batch apply on the store/engine hot path (v2 API). The batched path takes
// the peer lock once, wakes the scheduler once and inserts through the
// store's grouped InsertMany; the tcp variants additionally replace N
// framed wire messages with one, which is where the gap is decisive
// (10-20x, see CHANGES.md).
func BenchmarkBatchInsert(b *testing.B) {
	run := func(n int, batched bool, path func(int, bool) (bench.BatchResult, error)) func(*testing.B) {
		return func(b *testing.B) {
			var stages uint64
			for i := 0; i < b.N; i++ {
				res, err := path(n, batched)
				if err != nil {
					b.Fatal(err)
				}
				stages = res.Stages
			}
			b.ReportMetric(float64(stages), "stages")
		}
	}
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("path=perfact/facts=%d", n), run(n, false, bench.RunInsertPath))
		b.Run(fmt.Sprintf("path=batch/facts=%d", n), run(n, true, bench.RunInsertPath))
	}
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("path=perfact-tcp/facts=%d", n), run(n, false, bench.RunRemoteInsertPath))
		b.Run(fmt.Sprintf("path=batch-tcp/facts=%d", n), run(n, true, bench.RunRemoteInsertPath))
	}
}

func BenchmarkAblationJoinIndexed(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bench.RunJoinAblation(n, n, true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationJoinScan(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bench.RunJoinAblation(n, n, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationUpdatesNoWAL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunWALAblation(5000, ""); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationUpdatesWAL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunWALAblation(5000, b.TempDir()); err != nil {
			b.Fatal(err)
		}
	}
}
