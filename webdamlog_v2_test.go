package webdamlog_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	webdamlog "repro"
)

// TestFacadeBatchAndSubscribe drives the whole v2 surface through the root
// package: context-bound Run, an atomic Batch, and a Subscribe stream over
// a rule-derived relation fed from another peer.
func TestFacadeBatchAndSubscribe(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	sys := webdamlog.NewSystem()
	err := sys.LoadSource(`
		peer emilien;
		relation extensional pictures@emilien(id, name);

		peer jules;
		relation extensional selectedAttendee@jules(attendee);
		relation intensional attendeePictures@jules(id, name);
		selectedAttendee@jules("emilien");
		attendeePictures@jules($id,$name) :-
			selectedAttendee@jules($a), pictures@$a($id,$name);
	`)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.Run(ctx, 0); err != nil {
		t.Fatal(err)
	}

	deltas, err := sys.Peer("jules").Subscribe(ctx, "attendeePictures")
	if err != nil {
		t.Fatal(err)
	}

	batch := webdamlog.NewBatch().
		Insert(webdamlog.NewFact("pictures", "emilien", webdamlog.Int(1), webdamlog.Str("sea.jpg"))).
		Insert(webdamlog.NewFact("pictures", "emilien", webdamlog.Int(2), webdamlog.Str("boat.jpg")))
	if err := sys.Peer("emilien").Apply(ctx, batch); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.Run(ctx, 0); err != nil {
		t.Fatal(err)
	}

	var got []webdamlog.Delta
	for len(deltas) > 0 {
		got = append(got, <-deltas)
	}
	if len(got) != 2 || got[0].Delete || got[1].Delete {
		t.Fatalf("deltas = %v, want two inserts", got)
	}
	if len(sys.Peer("jules").Query("attendeePictures")) != 2 {
		t.Error("derived view incomplete")
	}
}

// TestTypedErrorsAcrossFacade checks that failures from every layer match
// the re-exported sentinels with errors.Is.
func TestTypedErrorsAcrossFacade(t *testing.T) {
	sys := webdamlog.NewSystem()
	p, err := sys.AddPeer("alice")
	if err != nil {
		t.Fatal(err)
	}

	if _, err := p.Subscribe(context.Background(), "ghost"); !errors.Is(err, webdamlog.ErrUnknownRelation) {
		t.Errorf("Subscribe: %v, want ErrUnknownRelation", err)
	}
	if err := p.RemoveRule("nope"); !errors.Is(err, webdamlog.ErrUnknownRule) {
		t.Errorf("RemoveRule: %v, want ErrUnknownRule", err)
	}
	if err := p.Insert(webdamlog.NewFact("r", "ghost", webdamlog.Int(1))); !errors.Is(err, webdamlog.ErrUnknownPeer) {
		t.Errorf("Insert to ghost peer: %v, want ErrUnknownPeer", err)
	}
	if err := p.DeclareRelation("r", 0, "a"); err != nil {
		t.Fatal(err)
	}
	if err := p.DeclareRelation("r", 0, "a", "b"); !errors.Is(err, webdamlog.ErrSchemaConflict) {
		t.Errorf("redeclare: %v, want ErrSchemaConflict", err)
	}

	blocker := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(blocker, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AddPeer("bob", webdamlog.WithWAL(filepath.Join(blocker, "wal"))); !errors.Is(err, webdamlog.ErrWAL) {
		t.Errorf("WithWAL: %v, want ErrWAL", err)
	}
}

// TestRunCancellationViaFacade: the acceptance criterion — canceling the
// context passed to System.Run returns promptly with context.Canceled.
func TestRunCancellationViaFacade(t *testing.T) {
	sys := webdamlog.NewSystem()
	if err := sys.LoadSource(`peer a; rel@a(1);`); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, _, err := sys.Run(ctx, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if time.Since(start) > time.Second {
		t.Error("cancellation was not prompt")
	}
}

// TestQuiescenceErrorAs: the round budget error is both Is-able and As-able.
func TestQuiescenceErrorAs(t *testing.T) {
	err := error(&webdamlog.QuiescenceError{Rounds: 7})
	if !errors.Is(err, webdamlog.ErrNoQuiescence) {
		t.Error("QuiescenceError does not match ErrNoQuiescence")
	}
	var q *webdamlog.QuiescenceError
	if !errors.As(err, &q) || q.Rounds != 7 {
		t.Errorf("errors.As failed: %v", err)
	}
}
