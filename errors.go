package webdamlog

import "repro/internal/errdefs"

// The public error taxonomy. Every layer wraps its failures around these
// sentinels, so callers branch with errors.Is/As instead of matching
// message strings:
//
//	if errors.Is(err, webdamlog.ErrNoQuiescence) {
//	    var q *webdamlog.QuiescenceError
//	    if errors.As(err, &q) { log.Printf("gave up after %d rounds", q.Rounds) }
//	}
var (
	// ErrUnknownRelation: an operation named a relation that is not declared
	// at the peer (e.g. Subscribe before the declaration is loaded).
	ErrUnknownRelation = errdefs.ErrUnknownRelation

	// ErrUnknownPeer: a message was routed to a peer the transport has no
	// address for.
	ErrUnknownPeer = errdefs.ErrUnknownPeer

	// ErrArity: a fact's width does not match its relation's declared
	// columns.
	ErrArity = errdefs.ErrArity

	// ErrPolicyDenied: a delegation was dropped by the access-control
	// policy.
	ErrPolicyDenied = errdefs.ErrPolicyDenied

	// ErrNoQuiescence: a run exhausted its round budget without the network
	// settling; errors.As against *QuiescenceError recovers the budget.
	ErrNoQuiescence = errdefs.ErrNoQuiescence

	// ErrWAL: the write-ahead log backing a durable peer failed to open or
	// write.
	ErrWAL = errdefs.ErrWAL

	// ErrClosed: use of a peer or transport endpoint after Close.
	ErrClosed = errdefs.ErrClosed

	// ErrDuplicateRule: AddRule with an id that is already taken.
	ErrDuplicateRule = errdefs.ErrDuplicateRule

	// ErrUnknownRule: RemoveRule/ReplaceRule with an id that does not exist.
	ErrUnknownRule = errdefs.ErrUnknownRule

	// ErrSchemaConflict: a relation redeclaration disagreed with the
	// existing schema on kind or arity.
	ErrSchemaConflict = errdefs.ErrSchemaConflict

	// ErrSlowSubscriber: a subscription was closed because its consumer fell
	// further behind than the channel buffer allows.
	ErrSlowSubscriber = errdefs.ErrSlowSubscriber

	// ErrBackpressure: an update was rejected or abandoned because a bounded
	// queue (a destination's outbox, or the peer's pending-op intake) was
	// full — fail-fast admission returns it immediately, blocking admission
	// only when the caller's context expires while waiting.
	ErrBackpressure = errdefs.ErrBackpressure
)
