package webdamlog

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// TestPublicSurfaceDocumented fails when an exported identifier of the root
// package — or of internal/engine, whose exported surface (planner,
// incremental maintenance, explain) is the project's documented core — lacks
// a doc comment, so `go doc` always reads as real documentation. CI runs
// this check explicitly; it also rides `go test ./...`.
func TestPublicSurfaceDocumented(t *testing.T) {
	for _, target := range []struct{ dir, pkg string }{
		{".", "webdamlog"},
		{"internal/engine", "engine"},
	} {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, target.dir, nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		pkg := pkgs[target.pkg]
		if pkg == nil {
			t.Fatalf("package %s not found in %s; parsed %v", target.pkg, target.dir, pkgs)
		}
		for name, file := range pkg.Files {
			if strings.HasSuffix(name, "_test.go") {
				continue
			}
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || d.Doc.Text() != "" {
						continue
					}
					if recv, ok := receiverType(d); ok && !ast.IsExported(recv) {
						continue // method on an unexported type: not public surface
					}
					t.Errorf("%s: exported %s has no doc comment", name, d.Name.Name)
				case *ast.GenDecl:
					checkGenDecl(t, name, d)
				}
			}
		}
	}
}

// receiverType extracts a method's receiver type name; ok is false for
// plain functions.
func receiverType(d *ast.FuncDecl) (string, bool) {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return "", false
	}
	expr := d.Recv.List[0].Type
	if star, ok := expr.(*ast.StarExpr); ok {
		expr = star.X
	}
	if id, ok := expr.(*ast.Ident); ok {
		return id.Name, true
	}
	return "", true // generic or unusual receiver: treat as exported surface
}

func checkGenDecl(t *testing.T, file string, d *ast.GenDecl) {
	t.Helper()
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && d.Doc.Text() == "" && s.Doc.Text() == "" {
				t.Errorf("%s: exported type %s has no doc comment", file, s.Name.Name)
			}
		case *ast.ValueSpec:
			// A grouped var/const block is fine if the block or the spec
			// carries the comment (the error taxonomy documents each
			// sentinel on its spec).
			for _, n := range s.Names {
				if !n.IsExported() {
					continue
				}
				if d.Doc.Text() == "" && s.Doc.Text() == "" && s.Comment.Text() == "" {
					t.Errorf("%s: exported %s has no doc comment", file, n.Name)
				}
			}
		}
	}
}
