// Delegation walkthrough: reproduces Figure 3 and the §4 scenario
// "Illustration of the control of delegation" — Émilien attempts to install
// a rule at Jules' peer; the system requires Jules' approval; the program
// of Jules changes once the approval is granted and the rule is installed.
// It then shows delegation *maintenance*: when Émilien's supporting fact is
// retracted, the delegated rule is withdrawn from Jules automatically.
//
//	go run ./examples/delegation
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	sys := webdamlog.NewSystem()

	// Jules trusts only the sigmod peer; everyone else's delegations are
	// queued for explicit approval (the paper's default policy).
	jules, err := sys.Network().NewPeer(webdamlogPeerConfig("jules"))
	if err != nil {
		log.Fatal(err)
	}
	if err := jules.LoadSource(`
		relation extensional pictures@jules(id, name);
		pictures@jules(1, "welcome-reception.jpg");
		pictures@jules(2, "keynote.jpg");
	`); err != nil {
		log.Fatal(err)
	}

	emilien, err := sys.AddPeer("emilien")
	if err != nil {
		log.Fatal(err)
	}
	if err := emilien.LoadSource(`
		relation extensional watch@emilien(peerName);
		relation extensional collected@emilien(id, name);
		watch@emilien("jules");
		collected@emilien($id, $name) :- watch@emilien($p), pictures@$p($id, $name);
	`); err != nil {
		log.Fatal(err)
	}
	sys.MustRun()

	fmt.Println("== Before approval ==")
	fmt.Printf("emilien's collected relation: %v (must be empty)\n", emilien.Query("collected"))
	fmt.Println("jules' program:")
	fmt.Print(indent(jules.ProgramText()))
	fmt.Println("jules' pending delegation queue:")
	for _, pd := range jules.Controller().Pending() {
		fmt.Println(indent(pd.String()))
	}

	fmt.Println("\n== Jules clicks accept ==")
	pending := jules.Controller().Pending()
	if len(pending) != 1 {
		log.Fatalf("expected exactly one pending delegation, got %d", len(pending))
	}
	if err := jules.Controller().Accept(pending[0].ID); err != nil {
		log.Fatal(err)
	}
	sys.MustRun()
	fmt.Println("jules' program now contains the delegated rule:")
	fmt.Print(indent(jules.ProgramText()))
	fmt.Printf("emilien's collected relation: %v\n", emilien.Query("collected"))

	fmt.Println("\n== Delegation maintenance: emilien stops watching ==")
	if err := emilien.DeleteString(`watch@emilien("jules");`); err != nil {
		log.Fatal(err)
	}
	sys.MustRun()
	fmt.Println("jules' program after the withdrawal:")
	fmt.Print(indent(jules.ProgramText()))
	fmt.Printf("delegated rules remaining at jules: %d\n", len(jules.DelegatedRules()))
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "    " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}

// webdamlogPeerConfig builds a peer config with the demo trust policy.
func webdamlogPeerConfig(name string) peerConfig {
	return peerConfig{Name: name, Policy: webdamlog.NewTrustPolicy("sigmod")}
}

// peerConfig aliases the peer configuration type through the facade.
type peerConfig = webdamlog.PeerConfig
