// Quickstart: two peers, one delegation — the paper's §2 example in ~40
// lines of API use. Jules' rule reads a relation at whichever peer the data
// names; evaluating it delegates the residual rule to emilien, who then
// streams his pictures to jules.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	sys := webdamlog.NewSystem()
	err := sys.LoadSource(`
		peer emilien;
		relation extensional pictures@emilien(id, name, owner, data);
		pictures@emilien(1, "sea.jpg",  "emilien", 0xCAFE);
		pictures@emilien(2, "boat.jpg", "emilien", 0xBEEF);

		peer jules;
		relation extensional selectedAttendee@jules(attendee);
		relation intensional attendeePictures@jules(id, name, owner, data);
		selectedAttendee@jules("emilien");

		// The paper's rule: the peer read by the second atom comes from the
		// data bound by the first atom, so evaluation delegates
		//   attendeePictures@jules(...) :- pictures@emilien(...)
		// to emilien at run time.
		attendeePictures@jules($id,$name,$owner,$data) :-
			selectedAttendee@jules($attendee),
			pictures@$attendee($id,$name,$owner,$data);
	`)
	if err != nil {
		log.Fatal(err)
	}
	rounds, stages, err := sys.Run(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network quiesced after %d rounds (%d peer stages)\n\n", rounds, stages)

	fmt.Println("attendeePictures@jules:")
	for _, t := range sys.Peer("jules").Query("attendeePictures") {
		fmt.Println("  ", t)
	}

	fmt.Println("\nrules installed at emilien by delegation:")
	for origin, rules := range sys.Peer("emilien").DelegatedRules() {
		for _, r := range rules {
			fmt.Printf("  %s;   (from %s)\n", r.String(), origin)
		}
	}
}
