// Quickstart: two peers, one delegation — the paper's §2 example on the v2
// API. Jules' rule reads a relation at whichever peer the data names;
// evaluating it delegates the residual rule to emilien, who then streams
// his pictures to jules. The example drives the three v2 primitives: a
// context-bound Run, an atomic Batch upload, and a streaming Subscribe on
// the derived view.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	sys := webdamlog.NewSystem()
	err := sys.LoadSource(`
		peer emilien;
		relation extensional pictures@emilien(id, name, owner, data);

		peer jules;
		relation extensional selectedAttendee@jules(attendee);
		relation intensional attendeePictures@jules(id, name, owner, data);
		selectedAttendee@jules("emilien");

		// The paper's rule: the peer read by the second atom comes from the
		// data bound by the first atom, so evaluation delegates
		//   attendeePictures@jules(...) :- pictures@emilien(...)
		// to emilien at run time.
		attendeePictures@jules($id,$name,$owner,$data) :-
			selectedAttendee@jules($attendee),
			pictures@$attendee($id,$name,$owner,$data);
	`)
	if err != nil {
		log.Fatal(err)
	}

	// Watch jules' derived view: every fixpoint that changes it streams
	// insert/delete deltas here.
	deltas, err := sys.Peer("jules").Subscribe(ctx, "attendeePictures")
	if err != nil {
		log.Fatal(err)
	}

	// Upload both pictures as one atomic batch: one store transaction, one
	// fixpoint stage at emilien.
	batch := webdamlog.NewBatch().
		Insert(webdamlog.NewFact("pictures", "emilien",
			webdamlog.Int(1), webdamlog.Str("sea.jpg"), webdamlog.Str("emilien"), webdamlog.Blob([]byte{0xCA, 0xFE}))).
		Insert(webdamlog.NewFact("pictures", "emilien",
			webdamlog.Int(2), webdamlog.Str("boat.jpg"), webdamlog.Str("emilien"), webdamlog.Blob([]byte{0xBE, 0xEF})))
	if err := sys.Peer("emilien").Apply(ctx, batch); err != nil {
		log.Fatal(err)
	}

	rounds, stages, err := sys.Run(ctx, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network quiesced after %d rounds (%d peer stages)\n\n", rounds, stages)

	fmt.Println("streamed deltas on attendeePictures@jules:")
	for len(deltas) > 0 {
		fmt.Println("  ", <-deltas)
	}

	fmt.Println("\nattendeePictures@jules:")
	for _, t := range sys.Peer("jules").Query("attendeePictures") {
		fmt.Println("  ", t)
	}

	fmt.Println("\nrules installed at emilien by delegation:")
	for origin, rules := range sys.Peer("emilien").DelegatedRules() {
		for _, r := range rules {
			fmt.Printf("  %s;   (from %s)\n", r.String(), origin)
		}
	}
}
