// An adversarially ordered three-way join for demonstrating the engine's
// cost-based join planner (`wdl run -explain examples/programs/joinplan.wdl`,
// and experiment P9 at scale). The rule names its largest relation first;
// the planner starts from the two-row selector and probes the chain
// backwards. Results are identical either way — only the work differs.

peer local;
relation extensional big@local(a, b);
relation extensional mid@local(b, c);
relation extensional small@local(c);
relation intensional reach@local(a, c);

big@local(0, 0);  big@local(1, 1);  big@local(2, 2);  big@local(3, 3);
big@local(4, 4);  big@local(5, 5);  big@local(6, 6);  big@local(7, 7);
mid@local(0, 0);  mid@local(1, 1);  mid@local(2, 2);  mid@local(3, 3);
mid@local(4, 4);  mid@local(5, 5);  mid@local(6, 6);  mid@local(7, 7);
small@local(0);   small@local(3);

reach@local($a, $c) :- big@local($a, $b), mid@local($b, $c), small@local($c);
