// Distributed reachability: peer p owns the edge relation, peer q computes
// the transitive closure over it. The recursive rule's body reads edges@p,
// so q delegates the residual rules to p — only derived reach facts travel.

peer p;
relation extensional edges@p(a, b);
edges@p("a", "b");
edges@p("b", "c");
edges@p("x", "y");
edges@p("u", "v");

peer q;
relation intensional reach@q(a, b);
reach@q($x,$y) :- edges@p($x,$y);
reach@q($x,$z) :- reach@q($x,$y), edges@p($y,$z);
