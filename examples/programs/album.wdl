// The paper's Wepic album scenario as a standalone program: Emilien's
// pictures and ratings live at his peer; Jules selects him as an attendee
// and derives both the full album view and the five-star subset. Evaluating
// jules' rules delegates the residuals to emilien at run time (§2).

peer emilien;
relation extensional pictures@emilien(id, name, owner, data);
relation extensional rate@emilien(id, stars);
pictures@emilien(1, "sea.jpg",    "emilien", 0xCAFE);
pictures@emilien(2, "boat.jpg",   "emilien", 0xBEEF);
pictures@emilien(3, "dinner.jpg", "emilien", 0x0099);
rate@emilien(1, 5);
rate@emilien(2, 5);
rate@emilien(3, 3);

peer jules;
relation extensional selectedAttendee@jules(attendee);
relation intensional attendeePictures@jules(id, name, owner, data);
relation intensional fiveStar@jules(id, name);
selectedAttendee@jules("emilien");

attendeePictures@jules($id,$name,$owner,$data) :-
    selectedAttendee@jules($attendee),
    pictures@$attendee($id,$name,$owner,$data);

fiveStar@jules($id,$name) :-
    attendeePictures@jules($id,$name,$owner,$data),
    rate@$owner($id, 5);
