// Social example: the paper's §1 motivation — "Joe … wants to post on his
// blog a review of the last movie he watched … advertise his review to his
// Facebook friends and include a link to his Dropbox folder" — expressed as
// a handful of WebdamLog rules over wrapper peers, showing that the system
// automates cross-service data management without centralizing the data.
//
// Here Joe runs his own peer holding reviews; a Facebook user-wrapper
// exports his friend list; the e-mail wrapper delivers notifications. One
// rule fans a new review out to every friend by their preferred channel.
//
//	go run ./examples/social
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/email"
	"repro/internal/facebook"
	"repro/internal/peer"
	"repro/internal/wrappers"
)

func main() {
	net := peer.NewNetwork()
	fb := facebook.NewService()
	mail := email.NewServer()

	// Joe's social graph lives on the external service.
	must(fb.AddUser("joe", "Joe"))
	must(fb.AddUser("alice", "Alice"))
	must(fb.AddUser("bob", "Bob"))
	must(fb.Befriend("joe", "alice"))
	must(fb.Befriend("joe", "bob"))

	// Wrapper peers: Joe's view of Facebook, and the mail system.
	joeFB, err := wrappers.NewFacebookUserPeer(net, "joefb", fb, "joe")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := wrappers.NewEmailPeer(net, "mailhub", mail); err != nil {
		log.Fatal(err)
	}

	// Joe's own peer: his blog reviews, and one rule that notifies every
	// Facebook friend of every review by e-mail. The friends relation is
	// read at the wrapper peer — evaluating the rule delegates there.
	joe, err := net.NewPeer(peer.Config{Name: "joe"})
	if err != nil {
		log.Fatal(err)
	}
	if err := joe.LoadSource(`
		relation extensional review@joe(movie, verdict);
		relation extensional blog@joe(title, body);

		// Publish each review on the blog...
		blog@joe($movie, $verdict) :- review@joe($movie, $verdict);

		// ...and advertise it to all Facebook friends by mail.
		mail@mailhub($friend, $movie, $movie, 0, "joe") :-
			review@joe($movie, $verdict),
			friends@joefb($me, $friend);
	`); err != nil {
		log.Fatal(err)
	}
	run := func() {
		if _, _, err := net.RunToQuiescence(context.Background(), 200); err != nil {
			log.Fatal(err)
		}
	}
	run()

	fmt.Println("Joe posts a review...")
	must(joe.InsertString(`review@joe("The Fifth Element", "a classic, 5/5");`))
	run()

	fmt.Println("\nblog@joe:")
	for _, t := range joe.Query("blog") {
		fmt.Println("  ", t)
	}
	fmt.Println("\nfriends@joefb (exported by the Facebook wrapper):")
	for _, t := range joeFB.Peer().Query("friends") {
		fmt.Println("  ", t)
	}
	fmt.Println("\nmail delivered:")
	for _, user := range mail.Mailboxes() {
		msgs, err := mail.Inbox(user)
		must(err)
		for _, m := range msgs {
			fmt.Printf("  to=%s from=%s subject=%q\n", m.To, m.From, m.Subject)
		}
	}
	fmt.Println("\nrules installed at the wrapper by delegation:")
	for origin, rules := range joeFB.Peer().DelegatedRules() {
		for _, r := range rules {
			fmt.Printf("  %s;   (from %s)\n", r.String(), origin)
		}
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
