// Wepic scenario: the full demonstration of the paper run as a script —
// the Figure 2 topology (Émilien's and Jules' laptops, the sigmod peer on
// the Webdam cloud, the SigmodFB Facebook-group wrapper, the e-mail
// wrapper), then the §4 scenarios: upload → automatic publication to
// sigmod → propagation to the Facebook group; transfer with preferred
// protocols; annotation and ranking.
//
//	go run ./examples/wepic
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/acl"
	"repro/internal/email"
	"repro/internal/facebook"
	"repro/internal/peer"
	"repro/internal/wepic"
	"repro/internal/wrappers"
)

func main() {
	net := peer.NewNetwork()
	fb := facebook.NewService()
	mail := email.NewServer()

	// External world: the conference's Facebook group with two members.
	must(fb.AddUser("emilien", "Emilien"))
	must(fb.AddUser("jules", "Jules"))
	must(fb.Befriend("emilien", "jules"))
	must(fb.CreateGroup("sigmodgroup", "SIGMOD 2013"))
	must(fb.JoinGroup("emilien", "sigmodgroup"))
	must(fb.JoinGroup("jules", "sigmodgroup"))

	// Wrappers and the hub.
	fbGroup, err := wrappers.NewFacebookGroupPeer(net, "sigmodfb", fb, "sigmodgroup")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := wrappers.NewEmailPeer(net, "mailhub", mail); err != nil {
		log.Fatal(err)
	}
	hub, err := wepic.NewHub(net, "sigmod", wepic.HubOptions{FacebookPeer: "sigmodfb"})
	if err != nil {
		log.Fatal(err)
	}

	// Attendee peers; per the paper, only the sigmod peer is trusted.
	opts := wepic.Options{Hub: "sigmod", MailPeer: "mailhub", Policy: acl.NewTrustPolicy("sigmod")}
	emilien, err := wepic.New(net, "emilien", opts)
	if err != nil {
		log.Fatal(err)
	}
	jules, err := wepic.New(net, "jules", opts)
	if err != nil {
		log.Fatal(err)
	}
	must(hub.Register("emilien"))
	must(hub.Register("jules"))
	run := func() {
		if _, _, err := net.RunToQuiescence(context.Background(), 500); err != nil {
			log.Fatal(err)
		}
	}
	acceptAll := func(apps ...*wepic.App) {
		for {
			any := false
			for _, a := range apps {
				for _, pd := range a.PendingDelegations() {
					fmt.Printf("  [%s] accepting delegation from %s\n", a.Name(), pd.Origin)
					must(a.AcceptDelegation(pd.ID))
					any = true
				}
			}
			if !any {
				return
			}
			run()
		}
	}
	run()

	fmt.Println("== Scenario 1: upload, authorize, publish to sigmod, propagate to Facebook ==")
	id, err := emilien.Upload("sea.jpg", []byte("...jpeg bytes..."))
	must(err)
	must(emilien.Authorize("sigmod", id))
	must(emilien.Authorize("facebook", id))
	run()
	acceptAll(emilien, jules) // sigmod's authorization check delegates to emilien
	fmt.Println("pictures@sigmod:")
	for _, p := range hub.Pictures() {
		fmt.Printf("  #%d %s (owner %s)\n", p.ID, p.Name, p.Owner)
	}
	photos, _ := fb.Photos("sigmodgroup")
	fmt.Println("photos on the Facebook group:")
	for _, ph := range photos {
		fmt.Printf("  #%d %s (owner %s) %s\n", ph.ID, ph.Name, ph.Owner, ph.URL)
	}

	fmt.Println("\n== Scenario 2: view a selected attendee's pictures (delegation + approval) ==")
	must(jules.SelectAttendee("emilien"))
	run()
	fmt.Printf("pending delegations at emilien: %d\n", len(emilien.PendingDelegations()))
	acceptAll(emilien, jules)
	for _, p := range jules.AttendeePictures() {
		fmt.Printf("  jules sees: #%d %s by %s\n", p.ID, p.Name, p.Owner)
	}

	fmt.Println("\n== Scenario 3: transfer via the recipient's preferred protocol (email) ==")
	must(emilien.SetProtocol("email"))
	id2, err := jules.Upload("talk.jpg", []byte("...slides..."))
	must(err)
	must(jules.SelectPicture("talk.jpg", id2, "jules"))
	run()
	acceptAll(emilien, jules)
	inbox, err := mail.Inbox("emilien")
	must(err)
	for _, m := range inbox {
		fmt.Printf("  emilien's mail: from=%s subject=%q body=%q\n", m.From, m.Subject, m.Body)
	}

	fmt.Println("\n== Scenario 4: annotate and rank ==")
	must(jules.Rate("emilien", id, 5))
	must(jules.Comment("emilien", id, "best picture of the conference"))
	must(jules.Tag("emilien", id, "Serge"))
	run()
	for _, rk := range emilien.Ranked() {
		fmt.Printf("  #%d %s: %.1f stars (%d ratings), %d comments, tags=%v\n",
			rk.ID, rk.Name, rk.AvgStars, rk.Ratings, rk.Comments, rk.Tags)
	}

	fmt.Println("\n== Scenario 5: comments made on Facebook flow back to sigmod ==")
	must(fb.AddComment("sigmodgroup", photos[0].ID, "jules", "nice shot!"))
	fbGroup.Sync()
	run()
	for _, t := range hub.Peer().Query("comments") {
		fmt.Printf("  comment at sigmod: %s\n", t)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
