package webdamlog

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/parser"
)

// wdlFence matches a ```wdl fenced block; group 1 is the program text.
// Program blocks in the docs are tagged `wdl` (untagged fences are grammar
// sketches, shell commands, Go snippets, …).
var wdlFence = regexp.MustCompile("(?s)```wdl\n(.*?)```")

// TestDocProgramsParse keeps the documentation and the language in sync:
// every ```wdl fenced block in docs/*.md and in README.md, and every
// examples/programs/*.wdl file (all of which the docs reference as the
// runnable companions), must parse with the real lexer and parser. CI runs
// this explicitly, so a syntax change that breaks a documented program —
// or a doc edit that drifts from the grammar — fails the build instead of
// silently rotting.
func TestDocProgramsParse(t *testing.T) {
	var docs []string
	md, err := filepath.Glob("docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	docs = append(docs, md...)
	docs = append(docs, "README.md")
	if len(md) == 0 {
		t.Fatal("no docs/*.md found; is the test running from the repo root?")
	}

	blocks := 0
	for _, doc := range docs {
		src, err := os.ReadFile(doc)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range wdlFence.FindAllStringSubmatch(string(src), -1) {
			blocks++
			if _, err := parser.Parse(m[1]); err != nil {
				t.Errorf("%s: fenced wdl block does not parse: %v\nblock:\n%s", doc, err, m[1])
			}
		}
	}
	if blocks == 0 {
		t.Error("no ```wdl fenced blocks found in the docs; the sync gate is vacuous")
	}

	programs, err := filepath.Glob("examples/programs/*.wdl")
	if err != nil {
		t.Fatal(err)
	}
	if len(programs) == 0 {
		t.Fatal("no examples/programs/*.wdl found")
	}
	for _, path := range programs {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := parser.Parse(string(src)); err != nil {
			t.Errorf("%s: referenced example program does not parse: %v", path, err)
		}
	}

	// Every program file the docs point at must exist (dangling references
	// are doc rot too).
	ref := regexp.MustCompile(`examples/programs/[A-Za-z0-9_.-]+\.wdl`)
	for _, doc := range docs {
		src, err := os.ReadFile(doc)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range ref.FindAllString(string(src), -1) {
			if _, err := os.Stat(m); err != nil {
				t.Errorf("%s references %s: %v", doc, m, err)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "doc sync: %d wdl blocks, %d example programs parsed\n", blocks, len(programs))
}

// TestOperationsDocMetricsCurrent cross-checks docs/operations.md against
// the metric registrations in internal/peer/metrics.go: every metric name
// the code registers must appear in the operations doc's catalog, so the
// documented exposition cannot drift from what /metrics actually serves.
func TestOperationsDocMetricsCurrent(t *testing.T) {
	doc, err := os.ReadFile("docs/operations.md")
	if err != nil {
		t.Fatal(err)
	}
	code, err := os.ReadFile("internal/peer/metrics.go")
	if err != nil {
		t.Fatal(err)
	}
	reg := regexp.MustCompile(`reg\.(?:Counter|Gauge|Histogram)\("(\w+)"`)
	names := reg.FindAllStringSubmatch(string(code), -1)
	if len(names) < 10 {
		t.Fatalf("found only %d metric registrations in internal/peer/metrics.go; the gate is miswired", len(names))
	}
	for _, m := range names {
		if !strings.Contains(string(doc), "`"+m[1]+"`") {
			t.Errorf("metric %s is registered but not documented in docs/operations.md", m[1])
		}
	}
}

// TestDiagnosticsDocComplete cross-checks docs/diagnostics.md against the
// static analyzer: every WDLxxx code the analyzer can emit (the constants
// in internal/analysis) must have a "## WDLxxx" section in the catalogue,
// and every documented section must correspond to a real code — the
// diagnostics reference cannot drift from the tool in either direction.
func TestDiagnosticsDocComplete(t *testing.T) {
	doc, err := os.ReadFile("docs/diagnostics.md")
	if err != nil {
		t.Fatal(err)
	}
	code, err := os.ReadFile("internal/analysis/analysis.go")
	if err != nil {
		t.Fatal(err)
	}
	decl := regexp.MustCompile(`Code\w+ = "(WDL\d{3})"`)
	emitted := decl.FindAllStringSubmatch(string(code), -1)
	if len(emitted) < 10 {
		t.Fatalf("found only %d diagnostic codes in internal/analysis/analysis.go; the gate is miswired", len(emitted))
	}
	known := map[string]bool{}
	for _, m := range emitted {
		known[m[1]] = true
		if !strings.Contains(string(doc), "## "+m[1]+" ") {
			t.Errorf("diagnostic %s is emitted but has no section in docs/diagnostics.md", m[1])
		}
	}
	heading := regexp.MustCompile(`(?m)^## (WDL\d{3}) `)
	for _, m := range heading.FindAllStringSubmatch(string(doc), -1) {
		if !known[m[1]] {
			t.Errorf("docs/diagnostics.md documents %s but the analyzer cannot emit it", m[1])
		}
	}
}

// TestDocExperimentIDsExist cross-checks docs/EXPERIMENTS.md against the
// wdlbench harness: every experiment id documented with a "### <id> —"
// heading must be a known -exp value (the harness source lists them), so
// the experiment catalogue cannot drift from the tool.
func TestDocExperimentIDsExist(t *testing.T) {
	doc, err := os.ReadFile("docs/EXPERIMENTS.md")
	if err != nil {
		t.Fatal(err)
	}
	harness, err := os.ReadFile("cmd/wdlbench/main.go")
	if err != nil {
		t.Fatal(err)
	}
	heading := regexp.MustCompile(`(?m)^### ([a-z][0-9]+) `)
	ids := heading.FindAllStringSubmatch(string(doc), -1)
	if len(ids) == 0 {
		t.Fatal("no experiment headings found in docs/EXPERIMENTS.md")
	}
	for _, m := range ids {
		if !strings.Contains(string(harness), fmt.Sprintf("%q", m[1])) {
			t.Errorf("docs/EXPERIMENTS.md documents experiment %s but cmd/wdlbench does not know it", m[1])
		}
	}
}
